"""Execution engine, executor strategies, caches, cost models and run statistics.

The engine (:class:`ExecutionEngine`) owns the lifecycle — scheduling,
cache/scope refcounting, deterministic retirement commits, stats — and
delegates task dispatch to a pluggable :class:`Executor` strategy:
``"inline"`` (reference), ``"thread"`` (latency-bound parallelism),
``"process"`` (CPU-bound parallelism across the GIL) or ``"distributed"``
(multi-worker dispatch over TCP sockets).  The strategy contract is
documented in ``docs/executors.md``.  The legacy serial/parallel engine API
from PR 2 remains available as deprecated shims
(:class:`ParallelExecutionEngine`, the ``"serial"``/``"parallel"`` name
aliases).
"""

from .cache import CacheEntry, EagerCache, LRUCache, OperatorCache
from .clock import ClusterModel, CostModel, MeasuredCostModel, SimulatedCostModel
from .engine import ExecutionEngine, create_engine
from .equivalence import (
    ExecutorRig,
    assert_equivalent_runs,
    assert_executor_matrix_equivalent,
    assert_executors_equivalent,
    canonical_run,
    compare_runs,
    run_executor_matrix,
    run_signature,
    stats_store_snapshot,
    store_snapshot,
)
from .executors import (
    EXECUTOR_NAMES,
    DistributedExecutor,
    Executor,
    InlineExecutor,
    LEGACY_ENGINE_ALIASES,
    ProcessExecutor,
    ThreadExecutor,
    WorkerServer,
    create_executor,
    default_max_workers,
    default_process_workers,
    parse_worker_address,
    resolve_executor_name,
)
from .parallel import ENGINE_NAMES, ParallelExecutionEngine
from .tracker import MemoryTracker, RunStats

__all__ = [
    "CacheEntry",
    "EagerCache",
    "LRUCache",
    "OperatorCache",
    "ClusterModel",
    "CostModel",
    "MeasuredCostModel",
    "SimulatedCostModel",
    "ExecutionEngine",
    "create_engine",
    "Executor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "DistributedExecutor",
    "WorkerServer",
    "EXECUTOR_NAMES",
    "LEGACY_ENGINE_ALIASES",
    "create_executor",
    "resolve_executor_name",
    "parse_worker_address",
    "default_max_workers",
    "default_process_workers",
    "ParallelExecutionEngine",
    "ENGINE_NAMES",
    "MemoryTracker",
    "RunStats",
    "assert_equivalent_runs",
    "canonical_run",
    "compare_runs",
    "run_signature",
    "stats_store_snapshot",
    "store_snapshot",
    "ExecutorRig",
    "run_executor_matrix",
    "assert_executor_matrix_equivalent",
    "assert_executors_equivalent",
]
