"""Execution engines (serial and parallel), caches, cost models and run statistics."""

from .cache import CacheEntry, EagerCache, LRUCache, OperatorCache
from .clock import ClusterModel, CostModel, MeasuredCostModel, SimulatedCostModel
from .engine import ExecutionEngine
from .equivalence import (
    assert_equivalent_runs,
    canonical_run,
    compare_runs,
    run_signature,
    stats_store_snapshot,
    store_snapshot,
)
from .parallel import ENGINE_NAMES, ParallelExecutionEngine, create_engine, default_max_workers
from .tracker import MemoryTracker, RunStats

__all__ = [
    "CacheEntry",
    "EagerCache",
    "LRUCache",
    "OperatorCache",
    "ClusterModel",
    "CostModel",
    "MeasuredCostModel",
    "SimulatedCostModel",
    "ExecutionEngine",
    "ParallelExecutionEngine",
    "ENGINE_NAMES",
    "create_engine",
    "default_max_workers",
    "MemoryTracker",
    "RunStats",
    "assert_equivalent_runs",
    "canonical_run",
    "compare_runs",
    "run_signature",
    "stats_store_snapshot",
    "store_snapshot",
]
