"""The execution engine: carries out the physical plan produced by the optimizer.

The engine walks the optimized DAG in topological order and, for every node
that is not pruned, either loads its value from the materialization store or
computes it from its (cached) parent values.  While executing it

* charges per-node times according to the configured :class:`CostModel`,
* evicts nodes from the in-memory cache as soon as they go out of scope
  (Section 5.4, cache pruning),
* at the eviction point asks the :class:`MaterializationPolicy` whether the
  node should be persisted (the streaming OPT-MAT-PLAN decision), always
  persisting mandatory outputs,
* records observed compute/load times and artifact sizes into the
  :class:`StatsStore` so the next iteration's optimizer has accurate
  estimates, and
* tracks memory usage for the Figure 10 experiment.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.dag import WorkflowDAG
from ..core.operators import RunContext
from ..exceptions import BudgetExceededError, ExecutionError, OperatorError
from ..optimizer.metrics import StatsStore
from ..optimizer.oep import ExecutionPlan, NodeState
from ..optimizer.omp import MaterializationPolicy, NeverMaterialize
from ..optimizer.pruning import eviction_schedule
from ..storage.serialization import estimate_size_bytes
from ..storage.store import MaterializationStore
from .cache import EagerCache, OperatorCache
from .clock import CostModel, MeasuredCostModel
from .tracker import MemoryTracker, RunStats

__all__ = ["ExecutionEngine"]


class ExecutionEngine:
    """Executes physical plans against a store, cache and cost model."""

    def __init__(
        self,
        store: MaterializationStore,
        policy: Optional[MaterializationPolicy] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsStore] = None,
        cache: Optional[OperatorCache] = None,
        context: Optional[RunContext] = None,
        materialize_outputs: bool = True,
    ):
        self.store = store
        self.policy = policy if policy is not None else NeverMaterialize()
        self.cost_model = cost_model if cost_model is not None else MeasuredCostModel()
        self.stats = stats if stats is not None else StatsStore()
        self.cache = cache if cache is not None else EagerCache()
        self.context = context if context is not None else RunContext()
        self.materialize_outputs = materialize_outputs

    # ------------------------------------------------------------------ public
    def execute(
        self,
        dag: WorkflowDAG,
        plan: ExecutionPlan,
        signatures: Mapping[str, str],
        iteration: int = 0,
    ) -> RunStats:
        """Run one iteration according to ``plan`` and return its statistics."""
        self._validate(dag, plan, signatures)
        self.cache.clear()
        memory = MemoryTracker()
        stats = RunStats(iteration=iteration, workflow_name=dag.name)
        stats.node_states = dict(plan.states)
        stats.original_nodes = sorted(plan.forced)

        order = [
            name
            for name in dag.topological_order()
            if plan.states[name] is not NodeState.PRUNE
        ]
        evictions = eviction_schedule(dag, order)

        for position, name in enumerate(order):
            node = dag.node(name)
            state = plan.states[name]
            if state is NodeState.LOAD:
                value, charged = self._load_node(name, signatures[name])
            else:
                value, charged = self._compute_node(dag, name)
            size_bytes = estimate_size_bytes(value)
            self.cache.put(name, value, size_bytes)
            stats.node_times[name] = charged
            stats.node_sizes[name] = size_bytes
            component = node.component.value
            stats.component_times[component] = stats.component_times.get(component, 0.0) + charged
            if node.is_output:
                stats.outputs[name] = value
            memory.snapshot(self.cache.snapshot_bytes())

            for evicted in evictions.get(position, []):
                self._retire_node(dag, evicted, signatures[evicted], stats, iteration)
                memory.snapshot(self.cache.snapshot_bytes())

        self.cache.clear()
        stats.storage_bytes = self.store.total_bytes()
        stats.peak_memory_bytes = memory.peak_bytes
        stats.average_memory_bytes = memory.average_bytes
        return stats

    # ------------------------------------------------------------------ helpers
    def _validate(
        self,
        dag: WorkflowDAG,
        plan: ExecutionPlan,
        signatures: Mapping[str, str],
    ) -> None:
        for name in dag.node_names:
            if name not in plan.states:
                raise ExecutionError(f"execution plan is missing a state for node {name!r}")
            if name not in signatures:
                raise ExecutionError(f"missing signature for node {name!r}")
        for name, state in plan.states.items():
            if state is NodeState.COMPUTE:
                for parent in dag.parents(name):
                    if plan.states.get(parent) is NodeState.PRUNE:
                        raise ExecutionError(
                            f"infeasible plan: {name!r} is computed but parent {parent!r} is pruned"
                        )

    def _load_node(self, name: str, signature: str) -> tuple:
        if not self.store.has(signature):
            raise ExecutionError(
                f"plan loads node {name!r} but no materialization exists for it"
            )
        value, measured = self.store.load(signature)
        record = self.store.catalog.get(signature)
        size_bytes = record.size_bytes if record is not None else estimate_size_bytes(value)
        charged = self.cost_model.io_cost(size_bytes, measured)
        self.stats.record(signature, load_time=charged, storage_bytes=size_bytes)
        return value, charged

    def _compute_node(self, dag: WorkflowDAG, name: str) -> tuple:
        node = dag.node(name)
        inputs: List[Any] = []
        input_sizes: List[int] = []
        for parent in node.parents:
            if parent in self.cache:
                value = self.cache.get(parent)
                inputs.append(value)
                input_sizes.append(estimate_size_bytes(value))
        started = time.perf_counter()
        try:
            value = node.operator.run(inputs, self.context)
        except OperatorError:
            raise
        except Exception as exc:  # noqa: BLE001 - wrap arbitrary operator failures
            raise OperatorError(name, str(exc)) from exc
        measured = time.perf_counter() - started
        charged = self.cost_model.compute_cost(node.operator, node.component, input_sizes, measured)
        return value, charged

    def _retire_node(
        self,
        dag: WorkflowDAG,
        name: str,
        signature: str,
        stats: RunStats,
        iteration: int,
    ) -> None:
        """Apply the streaming materialization decision and evict from cache."""
        entry = self.cache.evict(name)
        if entry is None:
            return
        node = dag.node(name)
        size_bytes = entry.size_bytes
        load_estimate = self.cost_model.estimate_io_cost(size_bytes)
        decision = self.policy.decide(
            name,
            dag,
            stats.node_times,
            load_estimate,
            size_bytes,
            self.store.remaining_budget(),
        )
        stats.decisions.append(decision)
        mandatory = node.is_output and self.materialize_outputs
        should_materialize = decision.materialize or mandatory
        if not should_materialize or self.store.has(signature):
            # Record compute-time/size statistics even when not materializing so
            # that future iterations can still estimate costs.
            self.stats.record(
                signature,
                compute_time=stats.node_times.get(name),
                storage_bytes=size_bytes,
            )
            return
        try:
            artifact = self.store.put(name, signature, entry.value, iteration=iteration)
        except BudgetExceededError:
            self.stats.record(
                signature,
                compute_time=stats.node_times.get(name),
                storage_bytes=size_bytes,
            )
            return
        write_charged = self.cost_model.io_cost(artifact.record.size_bytes, artifact.write_time)
        stats.materialization_time += write_charged
        stats.materialized_nodes.append(name)
        self.stats.record(
            signature,
            compute_time=stats.node_times.get(name),
            load_time=self.cost_model.estimate_io_cost(artifact.record.size_bytes),
            storage_bytes=artifact.record.size_bytes,
        )
