"""The execution engine: carries out the physical plan produced by the optimizer.

One :class:`ExecutionEngine` lifecycle serves every executor strategy.  The
engine walks the optimized DAG with an event-driven scheduler: every node
whose parents have resolved is dispatched onto the configured
:class:`~repro.execution.executors.Executor` (``"inline"``, ``"thread"``,
``"process"`` or ``"distributed"``), and completions drive further dispatch.
While executing it

* charges per-node times according to the configured :class:`CostModel`,
* evicts nodes from the in-memory cache as soon as they go out of scope
  (Section 5.4, cache pruning) — scope is tracked with per-entry reference
  counts (one per still-outstanding consumer), so the same retirement
  machinery serves every executor, concurrent or not,
* at the eviction point asks the :class:`MaterializationPolicy` whether the
  node should be persisted (the streaming OPT-MAT-PLAN decision), always
  persisting mandatory outputs,
* records observed compute/load times and artifact sizes into the
  :class:`StatsStore` so the next iteration's optimizer has accurate
  estimates, and
* tracks memory usage for the Figure 10 experiment.

Equivalence contract
--------------------
All executors produce the *same run statistics* (outputs, node states,
charged node/component times under a deterministic cost model,
materialization decisions and materialized-node sets); only wall-clock and
the memory-residency profile may differ.  Two mechanisms guarantee this:

* **Reference-counted scope tracking** — a cached value is retired only
  after all of its executing consumers completed, so an operator can never
  observe a missing input regardless of completion order.
* **Deterministic retirement commits** — out-of-scope nodes are *committed*
  (streaming materialization decision, store write, eviction) by the
  scheduler in a fixed order: sorted by out-of-scope position in the
  topological order, then by name.  Because the streaming policy's
  cumulative run time (Definition 6) reads only the node's *ancestors* —
  which have necessarily completed — and the storage-budget sequence is
  fixed by the commit order, every decision matches bit for bit across
  executors.

The contract is checkable with the harness in
:mod:`repro.execution.equivalence` and enforced by
``tests/test_engine_parallel.py`` over randomly generated DAGs.

Out-of-process execution
------------------------
With the process and distributed executors, COMPUTE tasks are shipped to
workers as serialized ``(node_name, operator, inputs, context)`` payloads
(:mod:`repro.storage.serialization`; the distributed executor additionally
frames them for its TCP transport); the worker returns the value plus its
measured compute seconds, and the engine applies the cost model on receipt
so charged times follow the same code path as in-process execution.  LOAD
tasks, cache bookkeeping, retirement commits and stats recording never leave
the coordinating process.  Every COMPUTE operator is validated for process
safety (picklability round trip + :attr:`Operator.supports_processes`)
before any work is dispatched.
"""

from __future__ import annotations

import heapq
import time
import warnings
from functools import partial
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.dag import WorkflowDAG
from ..core.operators import RunContext, ensure_process_safe
from ..exceptions import BudgetExceededError, ExecutionError, OperatorError
from ..optimizer.metrics import StatsStore
from ..optimizer.oep import ExecutionPlan, NodeState
from ..optimizer.omp import MaterializationPolicy, NeverMaterialize
from ..optimizer.pruning import out_of_scope_after
from ..storage.serialization import ArtifactRef, estimate_size_bytes, serialize
from ..storage.store import MaterializationStore
from .cache import EagerCache, OperatorCache
from .clock import CostModel, MeasuredCostModel
from .executors import Executor, ExecutorSpec, create_executor, resolve_executor_name
from .tracker import MemoryTracker, RunStats

__all__ = ["ExecutionEngine", "create_engine"]

#: Node signatures (class + configuration content hashes) already proven
#: process-safe, kept module-global because systems build a *fresh engine per
#: iteration*: the memo makes a multi-iteration lifecycle pay the validation
#: pickle round trip once per distinct operator configuration per process,
#: not once per iteration.  Bounded by a cap as a leak backstop.
_PROCESS_SAFE_SIGNATURES: Set[str] = set()
_PROCESS_SAFE_SIGNATURES_CAP = 50_000


class ExecutionEngine:
    """Executes physical plans against a store, cache and cost model.

    ``executor`` selects the task-dispatch strategy (``"inline"`` — the
    default reference strategy, ``"thread"``, ``"process"``,
    ``"distributed"``, a custom :class:`Executor` subclass, or a ready
    instance; the deprecated engine names ``"serial"``/``"parallel"`` are
    accepted as aliases).  ``max_workers`` bounds the worker pool for the
    pool-backed strategies; ``workers=["host:port", ...]`` selects the
    distributed executor's remote (address-configured) worker pool.  A
    ready executor *instance* is treated as externally owned: the engine
    drains it between runs (``finish_run``) and never shuts it down.
    """

    def __init__(
        self,
        store: MaterializationStore,
        policy: Optional[MaterializationPolicy] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsStore] = None,
        cache: Optional[OperatorCache] = None,
        context: Optional[RunContext] = None,
        materialize_outputs: bool = True,
        executor: ExecutorSpec = "inline",
        max_workers: Optional[int] = None,
        workers: Optional[Sequence[str]] = None,
    ):
        self.store = store
        self.policy = policy if policy is not None else NeverMaterialize()
        self.cost_model = cost_model if cost_model is not None else MeasuredCostModel()
        self.stats = stats if stats is not None else StatsStore()
        self.cache = cache if cache is not None else EagerCache()
        self.context = context if context is not None else RunContext()
        self.materialize_outputs = materialize_outputs
        self.max_workers = int(max_workers) if max_workers is not None else None
        self.workers = list(workers) if workers is not None else None
        self.executor = resolve_executor_name(executor) if isinstance(executor, str) else executor
        # Fail at construction, not first execute: executor constructors
        # validate max_workers/worker addresses, and create_executor rejects
        # combining an instance with either (pools are lazy, so this builds
        # nothing).
        create_executor(self.executor, max_workers=self.max_workers, workers=self.workers)

    # ------------------------------------------------------------------ public
    def execute(
        self,
        dag: WorkflowDAG,
        plan: ExecutionPlan,
        signatures: Mapping[str, str],
        iteration: int = 0,
    ) -> RunStats:
        """Run one iteration according to ``plan`` and return its statistics."""
        self._validate(dag, plan, signatures)
        self.cache.clear()
        memory = MemoryTracker()
        stats = self._new_run_stats(dag, plan, iteration)

        order = self._execution_order(dag, plan)
        if not order:
            return self._finalize_run(stats, memory)
        executing: Set[str] = set(order)
        consumers = self._consumer_counts(dag, executing)
        pending_parents = {
            name: len({p for p in dag.node(name).parents if p in executing})
            for name in order
        }

        # The reference retirement sequence: out-of-scope position in the
        # topological order, ties broken by name.  Commits follow this order
        # exactly, whatever the executor (see module docstring).
        scope = out_of_scope_after(dag, order)
        retirement_order = sorted(order, key=lambda n: (scope[n], n))
        retire_index = 0
        out_of_scope: Set[str] = set()

        completed: Set[str] = set()
        failure: Optional[BaseException] = None

        executor = self._build_executor()
        # Give the executor read access to the store before any dispatch:
        # distributed workers without the coordinator's filesystem resolve
        # ArtifactRef inputs against it over the FETCH lane.
        executor.bind_store(self.store)
        if executor.out_of_process:
            self._validate_process_plan(dag, plan, order, signatures)
        # Input sizes of shipped COMPUTE tasks, kept scheduler-side so the
        # cost model can be applied when the worker's reply arrives.
        shipped_input_sizes: Dict[str, List[int]] = {}

        # Ready nodes, dispatched in topological order (a heap of positions).
        # Pool executors drain the whole frontier to keep workers busy;
        # synchronous executors take one task at a time so each value is
        # cached and retired before the next task runs — exactly the serial
        # reference walk, with its bounded memory profile.
        topo_position = {name: index for index, name in enumerate(order)}
        ready: List[int] = [topo_position[n] for n in order if pending_parents[n] == 0]
        heapq.heapify(ready)
        in_flight = 0

        def dispatch_ready() -> None:
            nonlocal in_flight
            while ready and not (executor.synchronous and in_flight > 0):
                name = order[heapq.heappop(ready)]
                self._dispatch(executor, dag, plan, signatures, name, shipped_input_sizes)
                in_flight += 1

        try:
            executor.start()
            dispatch_ready()
            while len(completed) < len(order):
                name, outcome, error = executor.next_completion()
                in_flight -= 1
                if error is not None:
                    failure = error
                    break
                value, charged = self._charged_result(dag, name, outcome, shipped_input_sizes)

                node = dag.node(name)
                size_bytes = estimate_size_bytes(value)
                self.cache.put(name, value, size_bytes)
                self.cache.set_consumers(name, consumers[name])
                stats.node_times[name] = charged
                stats.node_sizes[name] = size_bytes
                if node.is_output:
                    stats.outputs[name] = value
                completed.add(name)
                memory.snapshot(self.cache.snapshot_bytes())

                # Reference-count bookkeeping: this node consumed each of its
                # executing parents once, and is itself out of scope
                # immediately when it has no executing consumers.
                if consumers[name] == 0:
                    out_of_scope.add(name)
                for parent in {p for p in node.parents if p in executing}:
                    if self.cache.release(parent):
                        out_of_scope.add(parent)

                for child in {c for c in dag.children(name) if c in executing}:
                    pending_parents[child] -= 1
                    if pending_parents[child] == 0:
                        heapq.heappush(ready, topo_position[child])

                while (
                    retire_index < len(retirement_order)
                    and retirement_order[retire_index] in out_of_scope
                ):
                    retired = retirement_order[retire_index]
                    self._retire_node(dag, retired, signatures[retired], stats, iteration)
                    memory.snapshot(self.cache.snapshot_bytes())
                    retire_index += 1

                dispatch_ready()
        except BaseException:
            self.cache.clear()
            raise
        finally:
            # On failure this cancels every not-yet-started task and waits
            # for in-flight operators to drain before surfacing the error.
            # A user-supplied instance keeps its pools alive (the caller
            # amortizes pool startup across executes and owns shutdown());
            # engine-built executors are released entirely.
            if isinstance(self.executor, Executor):
                executor.finish_run(cancel=True)
            else:
                executor.shutdown(cancel=True)

        if failure is not None:
            self.cache.clear()
            raise failure

        self._restore_deterministic_order(dag, stats, order)
        return self._finalize_run(stats, memory)

    # ------------------------------------------------------------------ dispatch
    def _build_executor(self) -> Executor:
        """The executor for one ``execute`` call (fresh unless instance-configured)."""
        return create_executor(
            self.executor, max_workers=self.max_workers, workers=self.workers
        )

    def _dispatch(
        self,
        executor: Executor,
        dag: WorkflowDAG,
        plan: ExecutionPlan,
        signatures: Mapping[str, str],
        name: str,
        shipped_input_sizes: Dict[str, List[int]],
    ) -> None:
        """Hand one ready node to the executor."""
        state = plan.states[name]
        if executor.out_of_process and state is NodeState.COMPUTE:
            payload, input_sizes = self._build_process_payload(
                dag, name, signatures, use_refs=executor.uses_artifact_refs
            )
            shipped_input_sizes[name] = input_sizes
            executor.submit_payload(name, payload)
            return
        executor.submit(name, partial(self._run_node, dag, name, state, signatures[name]))

    def _build_process_payload(
        self,
        dag: WorkflowDAG,
        name: str,
        signatures: Mapping[str, str],
        use_refs: bool = False,
    ) -> Tuple[bytes, List[int]]:
        """Serialize one COMPUTE task for an out-of-process worker.

        With ``use_refs`` (executors whose workers fetch from the bound
        store), inputs whose value is already materialized ship as
        :class:`ArtifactRef` placeholders instead of inline bytes — the
        worker pulls them over the FETCH lane and caches them, so an input
        shared by several tasks crosses the wire once, not once per task.
        Input *sizes* are always taken from the live cached values, so the
        cost model sees identical numbers whichever way the value travels.
        """
        inputs, input_sizes = self._gather_inputs(dag, name)
        if use_refs:
            inputs = [
                ArtifactRef(signatures[parent])
                if self.store.has(signatures[parent])
                else value
                for parent, value in zip(dag.node(name).parents, inputs)
            ]
        try:
            payload = serialize((name, dag.node(name).operator, inputs, self.context))
        except Exception as exc:  # noqa: BLE001 - unpicklable inputs/operator
            raise ExecutionError(
                f"cannot ship node {name!r} to a worker process: its operator or "
                f"inputs failed to serialize: {exc}"
            ) from exc
        return payload, input_sizes

    def _charged_result(
        self,
        dag: WorkflowDAG,
        name: str,
        outcome: Any,
        shipped_input_sizes: Dict[str, List[int]],
    ) -> Tuple[Any, float]:
        """Charge one completion.

        In-process outcomes are already ``(value, charged)``; out-of-process
        COMPUTE outcomes are ``(value, measured_seconds)`` and the cost model
        is applied here, on the scheduler, so charging is identical across
        executors.
        """
        if name in shipped_input_sizes:
            input_sizes = shipped_input_sizes.pop(name)
            value, measured = outcome
            node = dag.node(name)
            charged = self.cost_model.compute_cost(
                node.operator, node.component, input_sizes, measured
            )
            return value, charged
        return outcome

    # ------------------------------------------------------------------ helpers
    def _new_run_stats(self, dag: WorkflowDAG, plan: ExecutionPlan, iteration: int) -> RunStats:
        stats = RunStats(iteration=iteration, workflow_name=dag.name)
        stats.node_states = dict(plan.states)
        stats.original_nodes = sorted(plan.forced)
        return stats

    def _execution_order(self, dag: WorkflowDAG, plan: ExecutionPlan) -> List[str]:
        """Non-pruned nodes in the DAG's deterministic topological order."""
        return [
            name
            for name in dag.topological_order()
            if plan.states[name] is not NodeState.PRUNE
        ]

    @staticmethod
    def _consumer_counts(dag: WorkflowDAG, executing: Set[str]) -> Dict[str, int]:
        """Number of executing consumers per executing node (scope refcounts)."""
        return {
            name: len({child for child in dag.children(name) if child in executing})
            for name in executing
        }

    @staticmethod
    def _restore_deterministic_order(
        dag: WorkflowDAG, stats: RunStats, order: List[str]
    ) -> None:
        """Rebuild completion-ordered mappings in topological order.

        Nodes may complete in a nondeterministic order, so ``node_times``,
        ``node_sizes`` and ``outputs`` are re-keyed to the topological
        iteration order, and ``component_times`` is accumulated in that order
        so even the floating-point summation sequence is identical across
        executors.
        """
        stats.node_times = {name: stats.node_times[name] for name in order}
        stats.node_sizes = {name: stats.node_sizes[name] for name in order}
        stats.outputs = {
            name: stats.outputs[name] for name in order if name in stats.outputs
        }
        component_times: Dict[str, float] = {}
        for name in order:
            component = dag.node(name).component.value
            component_times[component] = (
                component_times.get(component, 0.0) + stats.node_times[name]
            )
        stats.component_times = component_times

    def _finalize_run(self, stats: RunStats, memory: MemoryTracker) -> RunStats:
        self.cache.clear()
        stats.storage_bytes = self.store.total_bytes()
        stats.peak_memory_bytes = memory.peak_bytes
        stats.average_memory_bytes = memory.average_bytes
        return stats

    def _validate(
        self,
        dag: WorkflowDAG,
        plan: ExecutionPlan,
        signatures: Mapping[str, str],
    ) -> None:
        for name in dag.node_names:
            if name not in plan.states:
                raise ExecutionError(f"execution plan is missing a state for node {name!r}")
            if name not in signatures:
                raise ExecutionError(f"missing signature for node {name!r}")
        for name, state in plan.states.items():
            if state is NodeState.COMPUTE:
                for parent in dag.parents(name):
                    if plan.states.get(parent) is NodeState.PRUNE:
                        raise ExecutionError(
                            f"infeasible plan: {name!r} is computed but parent {parent!r} is pruned"
                        )

    def _validate_process_plan(
        self,
        dag: WorkflowDAG,
        plan: ExecutionPlan,
        order: Sequence[str],
        signatures: Mapping[str, str],
    ) -> None:
        """Every COMPUTE node must be process-safe before any work starts.

        Validation is memoized per node signature (module-global, since
        systems rebuild the engine per iteration), so multi-iteration
        lifecycles pay the pickle round trip once per distinct operator
        configuration rather than once per iteration.
        """
        for name in order:
            if plan.states[name] is not NodeState.COMPUTE:
                continue
            signature = signatures[name]
            if signature in _PROCESS_SAFE_SIGNATURES:
                continue
            ensure_process_safe(dag.node(name).operator, node_name=name)
            if len(_PROCESS_SAFE_SIGNATURES) >= _PROCESS_SAFE_SIGNATURES_CAP:
                _PROCESS_SAFE_SIGNATURES.clear()
            _PROCESS_SAFE_SIGNATURES.add(signature)

    def _run_node(
        self, dag: WorkflowDAG, name: str, state: NodeState, signature: str
    ) -> Tuple[Any, float]:
        """Produce one node's value (load or compute) and its charged time."""
        if state is NodeState.LOAD:
            return self._load_node(name, signature)
        return self._compute_node(dag, name)

    def _load_node(self, name: str, signature: str) -> Tuple[Any, float]:
        if not self.store.has(signature):
            raise ExecutionError(
                f"plan loads node {name!r} but no materialization exists for it"
            )
        value, measured = self.store.load(signature)
        record = self.store.catalog.get(signature)
        size_bytes = record.size_bytes if record is not None else estimate_size_bytes(value)
        charged = self.cost_model.io_cost(size_bytes, measured)
        self.stats.record(signature, load_time=charged, storage_bytes=size_bytes)
        return value, charged

    def _gather_inputs(self, dag: WorkflowDAG, name: str) -> Tuple[List[Any], List[int]]:
        """Collect a node's cached input values and their estimated sizes."""
        node = dag.node(name)
        inputs: List[Any] = []
        input_sizes: List[int] = []
        for parent in node.parents:
            if parent not in self.cache:
                raise ExecutionError(
                    f"cannot compute node {name!r}: input {parent!r} is not cached "
                    f"(evicted or never produced); the operator would run with "
                    f"fewer inputs than the DAG declares"
                )
            value = self.cache.get(parent)
            inputs.append(value)
            input_sizes.append(estimate_size_bytes(value))
        return inputs, input_sizes

    def _compute_node(self, dag: WorkflowDAG, name: str) -> Tuple[Any, float]:
        node = dag.node(name)
        inputs, input_sizes = self._gather_inputs(dag, name)
        started = time.perf_counter()
        try:
            value = node.operator.run(inputs, self.context)
        except OperatorError:
            raise
        except Exception as exc:  # noqa: BLE001 - wrap arbitrary operator failures
            raise OperatorError(name, str(exc)) from exc
        measured = time.perf_counter() - started
        charged = self.cost_model.compute_cost(node.operator, node.component, input_sizes, measured)
        return value, charged

    def _retire_node(
        self,
        dag: WorkflowDAG,
        name: str,
        signature: str,
        stats: RunStats,
        iteration: int,
    ) -> None:
        """Apply the streaming materialization decision and evict from cache."""
        entry = self.cache.evict(name)
        if entry is None:
            return
        node = dag.node(name)
        size_bytes = entry.size_bytes
        load_estimate = self.cost_model.estimate_io_cost(size_bytes)
        decision = self.policy.decide(
            name,
            dag,
            stats.node_times,
            load_estimate,
            size_bytes,
            self.store.remaining_budget(),
        )
        stats.decisions.append(decision)
        mandatory = node.is_output and self.materialize_outputs
        should_materialize = decision.materialize or mandatory
        if not should_materialize or self.store.has(signature):
            # Record compute-time/size statistics even when not materializing so
            # that future iterations can still estimate costs.
            self.stats.record(
                signature,
                compute_time=stats.node_times.get(name),
                storage_bytes=size_bytes,
            )
            return
        try:
            artifact = self.store.put(name, signature, entry.value, iteration=iteration)
        except BudgetExceededError:
            self.stats.record(
                signature,
                compute_time=stats.node_times.get(name),
                storage_bytes=size_bytes,
            )
            return
        write_charged = self.cost_model.io_cost(artifact.record.size_bytes, artifact.write_time)
        stats.materialization_time += write_charged
        stats.materialized_nodes.append(name)
        self.stats.record(
            signature,
            compute_time=stats.node_times.get(name),
            load_time=self.cost_model.estimate_io_cost(artifact.record.size_bytes),
            storage_bytes=artifact.record.size_bytes,
        )


def create_engine(
    executor: Optional[ExecutorSpec] = None,
    *,
    engine: Optional[str] = None,
    max_workers: Optional[int] = None,
    workers: Optional[Sequence[str]] = None,
    **kwargs,
) -> ExecutionEngine:
    """Build an execution engine for an executor strategy.

    Parameters
    ----------
    executor:
        ``"inline"`` (default), ``"thread"``, ``"process"``,
        ``"distributed"``, an :class:`Executor` subclass, or a ready
        instance (see ``docs/executors.md`` for the strategy contract).
    max_workers:
        Worker-pool bound for pool-backed strategies; rejected when
        combined with an executor instance.
    workers:
        Remote worker addresses (``"host:port"``) for the distributed
        executor's address-configured mode; rejected for other strategies
        and when combined with an executor instance.
    **kwargs:
        Forwarded to :class:`ExecutionEngine` (store, policy, cost model,
        stats, cache, context, ...).

    Returns
    -------
    A configured :class:`ExecutionEngine`.

    Raises
    ------
    ExecutionError
        On an unknown executor name, an invalid ``max_workers`` or worker
        address, or ``max_workers``/``workers`` combined with an executor
        instance.

    .. deprecated::
        The ``engine`` keyword and the engine names ``"serial"``/``"parallel"``
        (aliases for ``"inline"``/``"thread"``) are retained from the PR 2
        serial/parallel split for backwards compatibility; the explicit
        keyword warns.
    """
    if executor is None:
        if engine is not None:
            warnings.warn(
                "create_engine(engine=...) is deprecated; use the executor "
                'argument ("serial" -> "inline", "parallel" -> "thread")',
                DeprecationWarning,
                stacklevel=2,
            )
            executor = engine
        else:
            executor = "inline"
    return ExecutionEngine(
        executor=executor, max_workers=max_workers, workers=workers, **kwargs
    )
