"""The execution engine: carries out the physical plan produced by the optimizer.

The engine walks the optimized DAG in topological order and, for every node
that is not pruned, either loads its value from the materialization store or
computes it from its (cached) parent values.  While executing it

* charges per-node times according to the configured :class:`CostModel`,
* evicts nodes from the in-memory cache as soon as they go out of scope
  (Section 5.4, cache pruning) — scope is tracked with per-entry reference
  counts (one per still-outstanding consumer) rather than positions in the
  serial walk, so the same retirement machinery serves the parallel engine,
* at the eviction point asks the :class:`MaterializationPolicy` whether the
  node should be persisted (the streaming OPT-MAT-PLAN decision), always
  persisting mandatory outputs,
* records observed compute/load times and artifact sizes into the
  :class:`StatsStore` so the next iteration's optimizer has accurate
  estimates, and
* tracks memory usage for the Figure 10 experiment.

:class:`ExecutionEngine` executes the plan serially; its subclass
:class:`~repro.execution.parallel.ParallelExecutionEngine` dispatches ready
nodes onto a thread pool while producing the same run statistics.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.dag import WorkflowDAG
from ..core.operators import RunContext
from ..exceptions import BudgetExceededError, ExecutionError, OperatorError
from ..optimizer.metrics import StatsStore
from ..optimizer.oep import ExecutionPlan, NodeState
from ..optimizer.omp import MaterializationPolicy, NeverMaterialize
from ..storage.serialization import estimate_size_bytes
from ..storage.store import MaterializationStore
from .cache import EagerCache, OperatorCache
from .clock import CostModel, MeasuredCostModel
from .tracker import MemoryTracker, RunStats

__all__ = ["ExecutionEngine"]


class ExecutionEngine:
    """Executes physical plans against a store, cache and cost model."""

    def __init__(
        self,
        store: MaterializationStore,
        policy: Optional[MaterializationPolicy] = None,
        cost_model: Optional[CostModel] = None,
        stats: Optional[StatsStore] = None,
        cache: Optional[OperatorCache] = None,
        context: Optional[RunContext] = None,
        materialize_outputs: bool = True,
    ):
        self.store = store
        self.policy = policy if policy is not None else NeverMaterialize()
        self.cost_model = cost_model if cost_model is not None else MeasuredCostModel()
        self.stats = stats if stats is not None else StatsStore()
        self.cache = cache if cache is not None else EagerCache()
        self.context = context if context is not None else RunContext()
        self.materialize_outputs = materialize_outputs

    # ------------------------------------------------------------------ public
    def execute(
        self,
        dag: WorkflowDAG,
        plan: ExecutionPlan,
        signatures: Mapping[str, str],
        iteration: int = 0,
    ) -> RunStats:
        """Run one iteration according to ``plan`` and return its statistics."""
        self._validate(dag, plan, signatures)
        self.cache.clear()
        memory = MemoryTracker()
        stats = self._new_run_stats(dag, plan, iteration)

        order = self._execution_order(dag, plan)
        executing = set(order)
        consumers = self._consumer_counts(dag, executing)

        for name in order:
            node = dag.node(name)
            value, charged = self._run_node(dag, name, plan.states[name], signatures[name])
            size_bytes = estimate_size_bytes(value)
            self.cache.put(name, value, size_bytes)
            self.cache.set_consumers(name, consumers[name])
            stats.node_times[name] = charged
            stats.node_sizes[name] = size_bytes
            component = node.component.value
            stats.component_times[component] = stats.component_times.get(component, 0.0) + charged
            if node.is_output:
                stats.outputs[name] = value
            memory.snapshot(self.cache.snapshot_bytes())

            # Reference-count bookkeeping: this node consumed each of its
            # executing parents once, and is itself out of scope immediately
            # when it has no executing consumers.
            out_of_scope: List[str] = []
            if consumers[name] == 0:
                out_of_scope.append(name)
            for parent in {p for p in node.parents if p in executing}:
                if self.cache.release(parent):
                    out_of_scope.append(parent)
            for retired in sorted(out_of_scope):
                self._retire_node(dag, retired, signatures[retired], stats, iteration)
                memory.snapshot(self.cache.snapshot_bytes())

        return self._finalize_run(stats, memory)

    # ------------------------------------------------------------------ helpers
    def _new_run_stats(self, dag: WorkflowDAG, plan: ExecutionPlan, iteration: int) -> RunStats:
        stats = RunStats(iteration=iteration, workflow_name=dag.name)
        stats.node_states = dict(plan.states)
        stats.original_nodes = sorted(plan.forced)
        return stats

    def _execution_order(self, dag: WorkflowDAG, plan: ExecutionPlan) -> List[str]:
        """Non-pruned nodes in the DAG's deterministic topological order."""
        return [
            name
            for name in dag.topological_order()
            if plan.states[name] is not NodeState.PRUNE
        ]

    @staticmethod
    def _consumer_counts(dag: WorkflowDAG, executing: Set[str]) -> Dict[str, int]:
        """Number of executing consumers per executing node (scope refcounts)."""
        return {
            name: len({child for child in dag.children(name) if child in executing})
            for name in executing
        }

    def _finalize_run(self, stats: RunStats, memory: MemoryTracker) -> RunStats:
        self.cache.clear()
        stats.storage_bytes = self.store.total_bytes()
        stats.peak_memory_bytes = memory.peak_bytes
        stats.average_memory_bytes = memory.average_bytes
        return stats

    def _validate(
        self,
        dag: WorkflowDAG,
        plan: ExecutionPlan,
        signatures: Mapping[str, str],
    ) -> None:
        for name in dag.node_names:
            if name not in plan.states:
                raise ExecutionError(f"execution plan is missing a state for node {name!r}")
            if name not in signatures:
                raise ExecutionError(f"missing signature for node {name!r}")
        for name, state in plan.states.items():
            if state is NodeState.COMPUTE:
                for parent in dag.parents(name):
                    if plan.states.get(parent) is NodeState.PRUNE:
                        raise ExecutionError(
                            f"infeasible plan: {name!r} is computed but parent {parent!r} is pruned"
                        )

    def _run_node(
        self, dag: WorkflowDAG, name: str, state: NodeState, signature: str
    ) -> Tuple[Any, float]:
        """Produce one node's value (load or compute) and its charged time."""
        if state is NodeState.LOAD:
            return self._load_node(name, signature)
        return self._compute_node(dag, name)

    def _load_node(self, name: str, signature: str) -> Tuple[Any, float]:
        if not self.store.has(signature):
            raise ExecutionError(
                f"plan loads node {name!r} but no materialization exists for it"
            )
        value, measured = self.store.load(signature)
        record = self.store.catalog.get(signature)
        size_bytes = record.size_bytes if record is not None else estimate_size_bytes(value)
        charged = self.cost_model.io_cost(size_bytes, measured)
        self.stats.record(signature, load_time=charged, storage_bytes=size_bytes)
        return value, charged

    def _compute_node(self, dag: WorkflowDAG, name: str) -> Tuple[Any, float]:
        node = dag.node(name)
        inputs: List[Any] = []
        input_sizes: List[int] = []
        for parent in node.parents:
            if parent not in self.cache:
                raise ExecutionError(
                    f"cannot compute node {name!r}: input {parent!r} is not cached "
                    f"(evicted or never produced); the operator would run with "
                    f"fewer inputs than the DAG declares"
                )
            value = self.cache.get(parent)
            inputs.append(value)
            input_sizes.append(estimate_size_bytes(value))
        started = time.perf_counter()
        try:
            value = node.operator.run(inputs, self.context)
        except OperatorError:
            raise
        except Exception as exc:  # noqa: BLE001 - wrap arbitrary operator failures
            raise OperatorError(name, str(exc)) from exc
        measured = time.perf_counter() - started
        charged = self.cost_model.compute_cost(node.operator, node.component, input_sizes, measured)
        return value, charged

    def _retire_node(
        self,
        dag: WorkflowDAG,
        name: str,
        signature: str,
        stats: RunStats,
        iteration: int,
    ) -> None:
        """Apply the streaming materialization decision and evict from cache."""
        entry = self.cache.evict(name)
        if entry is None:
            return
        node = dag.node(name)
        size_bytes = entry.size_bytes
        load_estimate = self.cost_model.estimate_io_cost(size_bytes)
        decision = self.policy.decide(
            name,
            dag,
            stats.node_times,
            load_estimate,
            size_bytes,
            self.store.remaining_budget(),
        )
        stats.decisions.append(decision)
        mandatory = node.is_output and self.materialize_outputs
        should_materialize = decision.materialize or mandatory
        if not should_materialize or self.store.has(signature):
            # Record compute-time/size statistics even when not materializing so
            # that future iterations can still estimate costs.
            self.stats.record(
                signature,
                compute_time=stats.node_times.get(name),
                storage_bytes=size_bytes,
            )
            return
        try:
            artifact = self.store.put(name, signature, entry.value, iteration=iteration)
        except BudgetExceededError:
            self.stats.record(
                signature,
                compute_time=stats.node_times.get(name),
                storage_bytes=size_bytes,
            )
            return
        write_charged = self.cost_model.io_cost(artifact.record.size_bytes, artifact.write_time)
        stats.materialization_time += write_charged
        stats.materialized_nodes.append(name)
        self.stats.record(
            signature,
            compute_time=stats.node_times.get(name),
            load_time=self.cost_model.estimate_io_cost(artifact.record.size_bytes),
            storage_bytes=artifact.record.size_bytes,
        )
