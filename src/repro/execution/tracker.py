"""Per-iteration run statistics and memory tracking.

Everything the evaluation section of the paper reports is derived from
:class:`RunStats` objects: per-node charged times and states, per-component
breakdowns (Figure 6), materialization overhead, storage snapshots
(Figure 9c/d), state fractions (Figure 8) and peak/average memory
(Figure 10).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..core.operators import Component
from ..optimizer.oep import NodeState
from ..optimizer.omp import MaterializationDecision

__all__ = ["MemoryTracker", "RunStats"]


class MemoryTracker:
    """Collects cache-size snapshots during one iteration's execution.

    Snapshots may be taken concurrently by the parallel execution engine's
    scheduler and worker threads, so recording and the derived aggregates are
    guarded by a lock.
    """

    def __init__(self) -> None:
        self._snapshots: List[int] = []
        self._lock = threading.Lock()

    def snapshot(self, size_bytes: int) -> None:
        with self._lock:
            self._snapshots.append(int(size_bytes))

    @property
    def peak_bytes(self) -> int:
        with self._lock:
            return max(self._snapshots, default=0)

    @property
    def average_bytes(self) -> float:
        with self._lock:
            if not self._snapshots:
                return 0.0
            return sum(self._snapshots) / len(self._snapshots)

    @property
    def snapshots(self) -> List[int]:
        with self._lock:
            return list(self._snapshots)


@dataclass
class RunStats:
    """Everything observed while executing one iteration of a workflow."""

    iteration: int
    workflow_name: str = ""
    node_states: Dict[str, NodeState] = field(default_factory=dict)
    node_times: Dict[str, float] = field(default_factory=dict)
    node_sizes: Dict[str, int] = field(default_factory=dict)
    component_times: Dict[str, float] = field(default_factory=dict)
    materialization_time: float = 0.0
    materialized_nodes: List[str] = field(default_factory=list)
    decisions: List[MaterializationDecision] = field(default_factory=list)
    storage_bytes: int = 0
    peak_memory_bytes: int = 0
    average_memory_bytes: float = 0.0
    outputs: Dict[str, Any] = field(default_factory=dict)
    original_nodes: List[str] = field(default_factory=list)
    iteration_type: str = ""

    # ------------------------------------------------------------------ metrics
    @property
    def execution_time(self) -> float:
        """Time spent loading and computing nodes (excluding materialization)."""
        return sum(self.node_times.values())

    @property
    def total_time(self) -> float:
        """Run time of the iteration as experienced by the user (Section 6.4)."""
        return self.execution_time + self.materialization_time

    def component_breakdown(self) -> Dict[str, float]:
        """Charged time per workflow component plus materialization (Figure 6)."""
        breakdown = {component.value: 0.0 for component in Component}
        breakdown.update(self.component_times)
        breakdown["Mat."] = self.materialization_time
        return breakdown

    def state_fractions(self) -> Dict[str, float]:
        """Fraction of DAG nodes in each execution state (Figure 8)."""
        total = max(len(self.node_states), 1)
        return {
            state.value: sum(1 for s in self.node_states.values() if s is state) / total
            for state in NodeState
        }

    def nodes_in_state(self, state: NodeState) -> List[str]:
        return sorted(name for name, s in self.node_states.items() if s is state)

    def summary(self) -> Dict[str, Any]:
        """A flat dictionary convenient for tabular reporting."""
        return {
            "iteration": self.iteration,
            "workflow": self.workflow_name,
            "iteration_type": self.iteration_type,
            "total_time": self.total_time,
            "execution_time": self.execution_time,
            "materialization_time": self.materialization_time,
            "storage_bytes": self.storage_bytes,
            "peak_memory_bytes": self.peak_memory_bytes,
            "average_memory_bytes": self.average_memory_bytes,
            "num_computed": len(self.nodes_in_state(NodeState.COMPUTE)),
            "num_loaded": len(self.nodes_in_state(NodeState.LOAD)),
            "num_pruned": len(self.nodes_in_state(NodeState.PRUNE)),
            "num_materialized": len(self.materialized_nodes),
        }
