"""Standalone distributed-worker entrypoint: ``python -m repro.execution.worker``.

Starts one listening :class:`~repro.execution.executors.WorkerServer` that a
coordinator reaches through
``DistributedExecutor(workers=["host:port", ...])`` (or any of the
``workers=`` plumbing: ``create_engine(..., workers=...)``,
``System.configure_executor("distributed", workers=...)``,
``run_lifecycle(..., executor="distributed", workers=...)``).  The worker
serves coordinator *connections* one at a time and survives across them, so
one long-lived process amortizes interpreter startup over many runs.

Within a single connection the protocol (version 5: canonical zero-copy
frame payloads, batch envelopes and the worker-to-worker artifact plane;
older coordinators are answered at their own version — see
``repro/storage/serialization.py``) is session-multiplexed: every task,
fetch and result frame carries the coordinator-side session id, so one
coordinator — e.g. the ``repro serve`` daemon — can interleave tasks from
several concurrent workflow runs over the same worker.  Task inputs
resolve through the worker's **content-addressed artifact tier** (see
``docs/artifacts.md``): a session-spanning LRU keyed on canonical
signatures that survives across coordinator connections, backed by a
peer-artifact listener other workers dial to pull blobs directly instead
of routing every byte through the coordinator.  ``--no-peer-fetch``
disables the listener (and the locate round trips), ``--cache-bytes``
bounds the tier; ``--max-sessions`` counts coordinator *connections* (one
``DistributedExecutor`` lifetime), not in-flight logical sessions.

Typical use — two loopback workers for a smoke test::

    PYTHONPATH=src python -m repro.execution.worker --port 7071 &
    PYTHONPATH=src python -m repro.execution.worker --port 7072 &
    # then, in the coordinator process:
    #   DistributedExecutor(workers=["127.0.0.1:7071", "127.0.0.1:7072"])

The worker prints ``worker <id> listening on <host>:<port>`` (flushed) once
it is ready to accept, so launchers can wait for readiness and, with
``--port 0``, discover the ephemeral port.  Workers bound to a non-loopback
interface (``--host 0.0.0.0``) accept any coordinator that speaks the framed
protocol — there is no TLS/auth yet, so keep non-loopback deployments on a
trusted network (see the "Remote workers" section of ``docs/executors.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .executors import WorkerServer

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.execution.worker",
        description=(
            "Start a listening distributed-executor worker that coordinators "
            "reach via DistributedExecutor(workers=['host:port', ...])."
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1; use 0.0.0.0 only on a "
        "trusted network — the protocol has no TLS/auth)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default: 0 = an ephemeral port, printed on the "
        "readiness line)",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="identity announced at registration (default: pid<pid>)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.5,
        help="seconds between heartbeats to the coordinator (default: 0.5); "
        "announced at registration, so a coordinator configured for faster "
        "beats widens its silence threshold instead of declaring this "
        "worker dead between healthy heartbeats",
    )
    parser.add_argument(
        "--fetch-timeout",
        type=float,
        default=60.0,
        help="seconds to wait for the coordinator to answer an artifact "
        "fetch before failing the task that needs it (default: 60)",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        help="exit after serving this many coordinator sessions "
        "(default: serve forever)",
    )
    parser.add_argument(
        "--no-peer-fetch",
        action="store_true",
        help="opt out of the worker-to-worker artifact plane: no "
        "peer-artifact listener is bound and every artifact fetch routes "
        "through the coordinator (protocol v4 behavior)",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help="byte budget of the content-addressed artifact cache tier "
        "(default: 256 MiB); the tier spans run sessions and coordinator "
        "connections and also feeds the peer-fetch lane",
    )
    args = parser.parse_args(argv)
    if args.max_sessions is not None and args.max_sessions < 1:
        parser.error("--max-sessions must be at least 1")
    if args.heartbeat_interval <= 0:
        parser.error("--heartbeat-interval must be positive")
    if args.fetch_timeout <= 0:
        parser.error("--fetch-timeout must be positive")
    if args.cache_bytes is not None and args.cache_bytes < 1:
        parser.error("--cache-bytes must be at least 1")

    def announce(host: str, port: int) -> None:
        server_id = args.worker_id if args.worker_id is not None else f"pid{os.getpid()}"
        print(f"worker {server_id} listening on {host}:{port}", flush=True)

    try:
        WorkerServer.listen(
            host=args.host,
            port=args.port,
            worker_id=args.worker_id,
            heartbeat_interval=args.heartbeat_interval,
            fetch_timeout=args.fetch_timeout,
            max_sessions=args.max_sessions,
            on_ready=announce,
            peer_fetch=not args.no_peer_fetch,
            cache_bytes=args.cache_bytes,
        )
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
