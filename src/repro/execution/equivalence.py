"""Engine-equivalence harness: compare runs across execution engines.

The parallel engine's contract is that it produces the same
:class:`~repro.execution.tracker.RunStats` as the serial engine — outputs,
node states, charged times under a deterministic cost model, materialization
decisions, materialized-node sets and recorded statistics — with only
wall-clock and memory-residency free to differ.  This module turns that
contract into checkable artifacts:

* :func:`canonical_run` — a JSON-serializable canonical form of a
  :class:`RunStats`, with outputs reduced to content digests and the
  timing-dependent fields optional.
* :func:`run_signature` — a SHA-256 over the canonical form; two runs with
  equal signatures are byte-identical under the chosen comparison.  Used by
  the determinism tests (repeated parallel runs at different ``max_workers``
  must produce identical signatures).
* :func:`compare_runs` / :func:`assert_equivalent_runs` — field-by-field
  comparison with readable mismatch reports, used by the equivalence suite
  over randomly generated DAGs.
* :func:`stats_store_snapshot` / :func:`store_snapshot` — canonical views of
  the cross-iteration :class:`StatsStore` and the
  :class:`MaterializationStore` catalog, so tests can also assert that two
  engines leave identical *persistent* state behind.

Memory statistics (``peak_memory_bytes`` / ``average_memory_bytes``) are
intentionally excluded: the parallel engine legitimately holds more values
in memory at once, so residency profiles differ between engines and worker
counts.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from ..optimizer.metrics import StatsStore
from ..storage.serialization import serialize
from ..storage.store import MaterializationStore
from .tracker import RunStats

__all__ = [
    "canonical_run",
    "run_signature",
    "compare_runs",
    "assert_equivalent_runs",
    "stats_store_snapshot",
    "store_snapshot",
]


def _digest(value: Any) -> str:
    """Content digest of an arbitrary operator output."""
    return hashlib.sha256(serialize(value)).hexdigest()


def _float_token(value: float) -> str:
    """Full-precision, reproducible representation of a float."""
    return repr(float(value))


def canonical_run(stats: RunStats, include_times: bool = True) -> Dict[str, Any]:
    """A canonical, JSON-serializable view of one iteration's run statistics.

    ``include_times`` controls whether charged times (node, component,
    materialization) and the decision thresholds participate.  Set it to
    ``False`` when comparing runs executed under a wall-clock cost model,
    where charged times are legitimately noisy.
    """
    canonical: Dict[str, Any] = {
        "workflow": stats.workflow_name,
        "iteration": stats.iteration,
        "node_states": {name: state.value for name, state in sorted(stats.node_states.items())},
        "node_sizes": {name: int(size) for name, size in sorted(stats.node_sizes.items())},
        "executed_nodes": list(stats.node_times.keys()),
        "outputs": {name: _digest(value) for name, value in sorted(stats.outputs.items())},
        "original_nodes": list(stats.original_nodes),
        "materialized_nodes": list(stats.materialized_nodes),
        "decisions": [
            {"node": decision.node, "materialize": bool(decision.materialize)}
            for decision in stats.decisions
        ],
        "storage_bytes": int(stats.storage_bytes),
    }
    if include_times:
        canonical["node_times"] = {
            name: _float_token(charged) for name, charged in sorted(stats.node_times.items())
        }
        canonical["component_times"] = {
            component: _float_token(seconds)
            for component, seconds in sorted(stats.component_times.items())
        }
        canonical["materialization_time"] = _float_token(stats.materialization_time)
        canonical["decision_details"] = [
            {
                "node": decision.node,
                "materialize": bool(decision.materialize),
                "reason": decision.reason,
                "cumulative_time": _float_token(decision.cumulative_time),
                "load_estimate": _float_token(decision.load_estimate),
            }
            for decision in stats.decisions
        ]
    return canonical


def run_signature(stats: RunStats, include_times: bool = True) -> str:
    """SHA-256 signature of :func:`canonical_run` (byte-identical comparison)."""
    payload = json.dumps(canonical_run(stats, include_times=include_times), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def stats_store_snapshot(stats: StatsStore, include_times: bool = True) -> Dict[str, Any]:
    """Canonical view of a :class:`StatsStore`'s per-signature metrics."""
    snapshot: Dict[str, Any] = {}
    for signature, metrics in stats.items():
        entry: Dict[str, Any] = {
            "observations": metrics.observations,
            "storage_bytes": metrics.storage_bytes,
        }
        if include_times:
            entry["compute_time"] = _float_token(metrics.compute_time)
            entry["load_time"] = _float_token(metrics.load_time)
        snapshot[signature] = entry
    return snapshot


def store_snapshot(store: MaterializationStore) -> Dict[str, Any]:
    """Canonical view of a materialization store's catalog (what is persisted)."""
    return {
        record.signature: {"node": record.node_name, "size_bytes": record.size_bytes}
        for record in store.artifacts()
    }


def compare_runs(
    reference: RunStats,
    candidate: RunStats,
    include_times: bool = True,
) -> List[str]:
    """Field-by-field comparison; returns human-readable mismatch descriptions."""
    mismatches: List[str] = []
    left = canonical_run(reference, include_times=include_times)
    right = canonical_run(candidate, include_times=include_times)
    for key in left:
        if left[key] != right[key]:
            mismatches.append(
                f"{key}: reference={_compact(left[key])} candidate={_compact(right[key])}"
            )
    return mismatches


def assert_equivalent_runs(
    reference: RunStats,
    candidate: RunStats,
    include_times: bool = True,
    reference_stats: Optional[StatsStore] = None,
    candidate_stats: Optional[StatsStore] = None,
    reference_store: Optional[MaterializationStore] = None,
    candidate_store: Optional[MaterializationStore] = None,
) -> None:
    """Assert two runs (and optionally their persistent state) are equivalent.

    Raises ``AssertionError`` listing every mismatching field.  Pass the
    engines' :class:`StatsStore` and :class:`MaterializationStore` instances
    to extend the check to cross-iteration state.
    """
    mismatches = compare_runs(reference, candidate, include_times=include_times)
    if reference_stats is not None and candidate_stats is not None:
        left = stats_store_snapshot(reference_stats, include_times=include_times)
        right = stats_store_snapshot(candidate_stats, include_times=include_times)
        if left != right:
            mismatches.append(f"stats_store: reference={_compact(left)} candidate={_compact(right)}")
    if reference_store is not None and candidate_store is not None:
        left = store_snapshot(reference_store)
        right = store_snapshot(candidate_store)
        if left != right:
            mismatches.append(f"materialization_store: reference={_compact(left)} candidate={_compact(right)}")
    if mismatches:
        raise AssertionError(
            "engine runs are not equivalent:\n  " + "\n  ".join(mismatches)
        )


def _compact(value: Any, limit: int = 300) -> str:
    text = json.dumps(value, sort_keys=True, default=str)
    return text if len(text) <= limit else text[: limit - 3] + "..."
