"""Engine-equivalence harness: compare runs across executor strategies.

The execution engine's contract is that every executor strategy (inline,
thread, process, distributed) produces the same
:class:`~repro.execution.tracker.RunStats` — outputs, node states, charged
times under a deterministic cost model, materialization decisions,
materialized-node sets and recorded statistics — with only wall-clock and
memory-residency free to differ.  This module turns that contract into
checkable artifacts:

* :func:`canonical_run` — a JSON-serializable canonical form of a
  :class:`RunStats`, with outputs reduced to content digests and the
  timing-dependent fields optional.
* :func:`run_signature` — a SHA-256 over the canonical form; two runs with
  equal signatures are byte-identical under the chosen comparison.  Used by
  the determinism tests (repeated runs at different ``max_workers`` and on
  different executors must produce identical signatures).
* :func:`compare_runs` / :func:`assert_equivalent_runs` — field-by-field
  comparison with readable mismatch reports, used by the equivalence suite
  over randomly generated DAGs.
* :func:`stats_store_snapshot` / :func:`store_snapshot` — canonical views of
  the cross-iteration :class:`StatsStore` and the
  :class:`MaterializationStore` catalog, so tests can also assert that two
  engines leave identical *persistent* state behind.
* :class:`ExecutorRig`, :func:`run_executor_matrix`,
  :func:`assert_executors_equivalent` — a ready-made driver that runs the
  canonical two-iteration lifecycle (compute-everything, then a mixed
  LOAD/COMPUTE/PRUNE re-plan) on every executor strategy and asserts the
  full matrix is equivalent to the inline reference, persistent state
  included.

Memory statistics (``peak_memory_bytes`` / ``average_memory_bytes``) are
intentionally excluded: concurrent executors legitimately hold more values
in memory at once, so residency profiles differ between strategies and
worker counts.

Exact *serialized* artifact sizes (``storage_bytes``) participate
unconditionally, and the comparison is exact equality.  Artifacts are
serialized with the canonical encoding of :mod:`repro.storage.canonical`
— deterministic bytes for a given value, in every process — so a value
that crossed a process or distributed boundary serializes to exactly the
bytes its in-process twin does.  (Under plain pickle this was not true:
pickle memoizes shared sub-objects by identity, so sizes drifted a few
bytes across process boundaries and this harness had to offer
``include_storage=False`` tolerances.  Those knobs are gone; a size
mismatch now always means a real divergence.)
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.operators import RunContext
from ..core.signatures import compute_node_signatures
from ..optimizer.metrics import StatsStore
from ..optimizer.oep import ExecutionPlan, solve_oep
from ..optimizer.omp import MaterializationPolicy, StreamingMaterializationPolicy
from ..storage.serialization import serialize
from ..storage.store import InMemoryStore, MaterializationStore
from .clock import SimulatedCostModel
from .executors import EXECUTOR_NAMES, Executor, ExecutorSpec
from .tracker import RunStats

__all__ = [
    "canonical_run",
    "canonical_lifecycle",
    "run_signature",
    "compare_runs",
    "assert_equivalent_runs",
    "stats_store_snapshot",
    "store_snapshot",
    "ExecutorRig",
    "MatrixColumn",
    "run_executor_matrix",
    "assert_executor_matrix_equivalent",
    "assert_executors_equivalent",
]


def _digest(value: Any) -> str:
    """Content digest of an arbitrary operator output."""
    return hashlib.sha256(serialize(value)).hexdigest()


def _float_token(value: float) -> str:
    """Full-precision, reproducible representation of a float."""
    return repr(float(value))


def canonical_run(stats: RunStats, include_times: bool = True) -> Dict[str, Any]:
    """A canonical, JSON-serializable view of one iteration's run statistics.

    ``include_times`` controls whether charged times (node, component,
    materialization) and the decision thresholds participate.  Set it to
    ``False`` when comparing runs executed under a wall-clock cost model,
    where charged times are legitimately noisy.  The exact serialized store
    size (``storage_bytes``) always participates: canonical serialization
    makes it bit-identical across process boundaries (module docstring).
    """
    canonical: Dict[str, Any] = {
        "workflow": stats.workflow_name,
        "iteration": stats.iteration,
        "node_states": {name: state.value for name, state in sorted(stats.node_states.items())},
        "node_sizes": {name: int(size) for name, size in sorted(stats.node_sizes.items())},
        "executed_nodes": list(stats.node_times.keys()),
        "outputs": {name: _digest(value) for name, value in sorted(stats.outputs.items())},
        "original_nodes": list(stats.original_nodes),
        "materialized_nodes": list(stats.materialized_nodes),
        "decisions": [
            {"node": decision.node, "materialize": bool(decision.materialize)}
            for decision in stats.decisions
        ],
    }
    canonical["storage_bytes"] = int(stats.storage_bytes)
    if include_times:
        canonical["node_times"] = {
            name: _float_token(charged) for name, charged in sorted(stats.node_times.items())
        }
        canonical["component_times"] = {
            component: _float_token(seconds)
            for component, seconds in sorted(stats.component_times.items())
        }
        canonical["materialization_time"] = _float_token(stats.materialization_time)
        canonical["decision_details"] = [
            {
                "node": decision.node,
                "materialize": bool(decision.materialize),
                "reason": decision.reason,
                "cumulative_time": _float_token(decision.cumulative_time),
                "load_estimate": _float_token(decision.load_estimate),
            }
            for decision in stats.decisions
        ]
    return canonical


def run_signature(stats: RunStats, include_times: bool = True) -> str:
    """SHA-256 signature of :func:`canonical_run` (byte-identical comparison)."""
    payload = json.dumps(canonical_run(stats, include_times=include_times), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def stats_store_snapshot(
    stats: StatsStore, include_times: bool = True
) -> Dict[str, Any]:
    """Canonical view of a :class:`StatsStore`'s per-signature metrics.

    Recorded byte sizes always participate: canonical serialization makes
    them deterministic across process boundaries (module docstring).
    """
    snapshot: Dict[str, Any] = {}
    for signature, metrics in stats.items():
        entry: Dict[str, Any] = {"observations": metrics.observations}
        entry["storage_bytes"] = metrics.storage_bytes
        if include_times:
            entry["compute_time"] = _float_token(metrics.compute_time)
            entry["load_time"] = _float_token(metrics.load_time)
        snapshot[signature] = entry
    return snapshot


def store_snapshot(store: MaterializationStore) -> Dict[str, Any]:
    """Canonical view of a materialization store's catalog (what is persisted).

    *Which* nodes are persisted, their exact serialized artifact sizes and
    their content digests all participate — canonical bytes are
    deterministic per value, so equal stores snapshot equal (module
    docstring).  Including the digest makes the check sensitive to the
    *path* bytes took into the store: a run whose workers resolved inputs
    via peer fetch or a shared cache tier must leave byte-identical
    artifacts behind, not merely same-sized ones.
    """
    return {
        record.signature: {
            "node": record.node_name,
            "size_bytes": record.size_bytes,
            "digest": record.digest,
        }
        for record in store.artifacts()
    }


def compare_runs(
    reference: RunStats,
    candidate: RunStats,
    include_times: bool = True,
) -> List[str]:
    """Field-by-field comparison; returns human-readable mismatch descriptions."""
    mismatches: List[str] = []
    left = canonical_run(reference, include_times=include_times)
    right = canonical_run(candidate, include_times=include_times)
    for key in left:
        if left[key] != right[key]:
            mismatches.append(
                f"{key}: reference={_compact(left[key])} candidate={_compact(right[key])}"
            )
    return mismatches


def assert_equivalent_runs(
    reference: RunStats,
    candidate: RunStats,
    include_times: bool = True,
    reference_stats: Optional[StatsStore] = None,
    candidate_stats: Optional[StatsStore] = None,
    reference_store: Optional[MaterializationStore] = None,
    candidate_store: Optional[MaterializationStore] = None,
) -> None:
    """Assert two runs (and optionally their persistent state) are equivalent.

    Raises ``AssertionError`` listing every mismatching field — including
    exact storage byte counts, which canonical serialization keeps
    bit-identical across executor strategies.  Pass the engines'
    :class:`StatsStore` and :class:`MaterializationStore` instances to
    extend the check to cross-iteration state.
    """
    mismatches = compare_runs(reference, candidate, include_times=include_times)
    if reference_stats is not None and candidate_stats is not None:
        left = stats_store_snapshot(reference_stats, include_times=include_times)
        right = stats_store_snapshot(candidate_stats, include_times=include_times)
        if left != right:
            mismatches.append(f"stats_store: reference={_compact(left)} candidate={_compact(right)}")
    if reference_store is not None and candidate_store is not None:
        left = store_snapshot(reference_store)
        right = store_snapshot(candidate_store)
        if left != right:
            mismatches.append(f"materialization_store: reference={_compact(left)} candidate={_compact(right)}")
    if mismatches:
        raise AssertionError(
            "engine runs are not equivalent:\n  " + "\n  ".join(mismatches)
        )


def canonical_lifecycle(
    iterations: Sequence[RunStats],
    include_times: bool = False,
) -> List[Dict[str, Any]]:
    """Canonical views of a whole lifecycle's per-iteration statistics.

    One :func:`canonical_run` dict per iteration, in order.  This is the
    payload the ``repro serve`` daemon returns for a submitted run and what
    its inline-verification compares against: with the default (times
    excluded) two lifecycles are equal exactly when they executed the same
    nodes into the same states with identical outputs, materialization
    decisions *and* exact storage byte counts — canonical serialization
    makes the sizes deterministic, so a served run matches its inline
    reference bit-for-bit, "identical modulo timing/memory".  The output
    is JSON-serializable (operator outputs are content digests).
    """
    return [canonical_run(stats, include_times=include_times) for stats in iterations]


def _compact(value: Any, limit: int = 300) -> str:
    text = json.dumps(value, sort_keys=True, default=str)
    return text if len(text) <= limit else text[: limit - 3] + "..."


# ---------------------------------------------------------------------------
# Executor-matrix driver
# ---------------------------------------------------------------------------
_INF = float("inf")

#: One rig's two-iteration record: (plan0, stats0, plan1, stats1).
MatrixRun = Tuple[ExecutionPlan, RunStats, ExecutionPlan, RunStats]


class ExecutorRig:
    """One executor strategy with its own store/stats, driven through plan+execute.

    The rig owns a fresh :class:`InMemoryStore` and :class:`StatsStore` and a
    deterministic :class:`SimulatedCostModel`, so charged times are
    comparable bit-for-bit across strategies.

    Parameters
    ----------
    executor:
        A canonical executor name (``"inline"``/``"thread"``/``"process"``/
        ``"distributed"``), one of the legacy aliases
        (``"serial"``/``"parallel"``), an :class:`Executor` subclass, or a
        ready instance — e.g. a ``DistributedExecutor(workers=[...])``
        connected to remote workers.  An instance is treated as
        caller-owned: the rig's engines drain it between runs and the
        caller runs the final ``shutdown()``.
    policy:
        Materialization policy (default: streaming OPT-MAT-PLAN).
    budget_bytes:
        Storage budget for the rig's in-memory store (``None`` = unlimited).
    max_workers:
        Worker count for pool-backed strategies (ignored for a ready
        instance, which already carries its own).
    seed:
        Seed for the rig's :class:`RunContext`.
    """

    def __init__(
        self,
        executor: ExecutorSpec = "inline",
        policy: Optional[MaterializationPolicy] = None,
        budget_bytes: Optional[int] = None,
        max_workers: Optional[int] = None,
        seed: int = 0,
    ):
        from .engine import create_engine

        self.store = InMemoryStore(budget_bytes=budget_bytes)
        self.stats_store = StatsStore()
        self.engine = create_engine(
            executor,
            max_workers=None if isinstance(executor, Executor) else max_workers,
            store=self.store,
            policy=policy if policy is not None else StreamingMaterializationPolicy(),
            cost_model=SimulatedCostModel(),
            stats=self.stats_store,
            context=RunContext(seed=seed),
        )

    def run(
        self,
        dag,
        signatures: Optional[Dict[str, str]] = None,
        forced: Sequence[str] = (),
        iteration: int = 0,
    ) -> Tuple[ExecutionPlan, RunStats]:
        """Solve an OEP plan (loads allowed where the store has artifacts) and execute it."""
        if signatures is None:
            signatures = compute_node_signatures(dag)
        compute_time = {name: 1.0 for name in dag.node_names}
        load_time = {
            name: (0.01 if self.store.has(signatures[name]) else _INF)
            for name in dag.node_names
        }
        plan = solve_oep(dag, compute_time, load_time, forced_compute=forced)
        return plan, self.engine.execute(dag, plan, signatures, iteration=iteration)


#: One matrix column: a canonical executor name, or an explicit
#: ``(label, spec)`` pair — e.g. ``("distributed-remote",
#: DistributedExecutor(workers=[...]))`` — keyed by its label in the
#: returned dictionaries.
MatrixColumn = Union[str, Tuple[str, ExecutorSpec]]


def _resolve_column(column: MatrixColumn) -> Tuple[str, ExecutorSpec]:
    """Split a matrix column into its result key and its executor spec."""
    if isinstance(column, tuple):
        label, spec = column
        return label, spec
    return column, column


def run_executor_matrix(
    dag,
    executors: Sequence[MatrixColumn] = EXECUTOR_NAMES,
    policy_factory=StreamingMaterializationPolicy,
    budget_bytes: Optional[int] = None,
    max_workers: int = 4,
    forced_second: Optional[Sequence[str]] = None,
) -> Tuple[Dict[str, ExecutorRig], Dict[str, MatrixRun]]:
    """Drive every executor through the canonical two-iteration lifecycle.

    Iteration 0 computes everything (and materializes per policy); iteration
    1 re-plans against the now-populated store with a deterministic forced
    subset, producing a LOAD/COMPUTE/PRUNE mix.  ``executors`` entries are
    canonical names or ``(label, spec)`` pairs (see :data:`MatrixColumn`);
    a spec may be a ready :class:`Executor` instance — e.g. an
    address-configured distributed executor — which stays caller-owned (the
    rigs drain it, the caller shuts it down).  Returns the rigs and the
    per-executor :data:`MatrixRun` records, keyed by name/label.
    """
    signatures = compute_node_signatures(dag)
    if forced_second is None:
        forced_second = sorted(dag.node_names)[:: max(1, len(dag) // 3)]
    rigs: Dict[str, ExecutorRig] = {}
    runs: Dict[str, MatrixRun] = {}
    for column in executors:
        label, spec = _resolve_column(column)
        rig = ExecutorRig(
            spec,
            policy=policy_factory(),
            budget_bytes=budget_bytes,
            max_workers=None if spec in ("inline", "serial") else max_workers,
        )
        plan0, stats0 = rig.run(dag, signatures, forced=dag.node_names, iteration=0)
        plan1, stats1 = rig.run(dag, signatures, forced=forced_second, iteration=1)
        rigs[label] = rig
        runs[label] = (plan0, stats0, plan1, stats1)
    return rigs, runs


def assert_executor_matrix_equivalent(
    rigs: Dict[str, ExecutorRig],
    runs: Dict[str, MatrixRun],
    reference: Optional[str] = None,
    include_times: bool = True,
) -> None:
    """Assert every executor's runs + persistent state match the reference's.

    ``reference`` defaults to the first executor in ``runs`` (by convention
    the inline strategy).  ``include_times`` is forwarded to
    :func:`assert_equivalent_runs`; storage statistics always participate,
    compared with exact equality (module docstring).
    """
    names = list(runs)
    if reference is None:
        reference = names[0]
    ref_plan0, ref0, ref_plan1, ref1 = runs[reference]
    for name in names:
        if name == reference:
            continue
        plan0, stats0, plan1, stats1 = runs[name]
        if plan0.states != ref_plan0.states or plan1.states != ref_plan1.states:
            raise AssertionError(
                f"executor {name!r} solved different plans than {reference!r}"
            )
        assert_equivalent_runs(ref0, stats0, include_times=include_times)
        assert_equivalent_runs(
            ref1,
            stats1,
            include_times=include_times,
            reference_stats=rigs[reference].stats_store,
            candidate_stats=rigs[name].stats_store,
            reference_store=rigs[reference].store,
            candidate_store=rigs[name].store,
        )


def assert_executors_equivalent(
    dag,
    executors: Sequence[MatrixColumn] = EXECUTOR_NAMES,
    include_times: bool = True,
    **matrix_kwargs,
) -> Tuple[Dict[str, ExecutorRig], Dict[str, MatrixRun]]:
    """Run :func:`run_executor_matrix` and assert the whole matrix agrees.

    Parameters
    ----------
    dag:
        The workflow DAG to drive through the two-iteration lifecycle.
    executors:
        Matrix columns to compare — strategy names and/or ``(label, spec)``
        pairs such as ``("distributed-remote",
        DistributedExecutor(workers=[...]))``; defaults to every built-in
        (:data:`EXECUTOR_NAMES` — inline, thread, process, distributed).
        The first entry is the reference.
    include_times:
        Forwarded to :func:`assert_equivalent_runs`.  Storage statistics
        always participate and are compared with exact equality — the
        canonical serializer makes byte counts deterministic across
        process boundaries (module docstring).
    **matrix_kwargs:
        Forwarded to :func:`run_executor_matrix` (``policy_factory``,
        ``budget_bytes``, ``max_workers``, ``forced_second``).

    Returns
    -------
    The ``(rigs, runs)`` pair from :func:`run_executor_matrix`, for further
    inspection.

    Raises
    ------
    AssertionError
        Listing every mismatching field of the first non-equivalent run.
    """
    rigs, runs = run_executor_matrix(dag, executors=executors, **matrix_kwargs)
    assert_executor_matrix_equivalent(rigs, runs, include_times=include_times)
    return rigs, runs
