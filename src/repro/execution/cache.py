"""Operator-output caches used during a single iteration's execution.

Helix actively manages the in-memory cache instead of relying on the
underlying engine's LRU eviction (Section 5.4, "Cache Pruning"): once a node
goes out of scope it is evicted immediately (after the streaming
materialization decision).  :class:`EagerCache` implements that policy;
:class:`LRUCache` implements the Spark-style baseline with a capacity bound,
used by the KeystoneML comparator and by the cache ablation benchmark.

Scope tracking is reference-count based: the execution engine registers the
number of still-outstanding consumers for every entry with
:meth:`OperatorCache.set_consumers` and calls :meth:`OperatorCache.release`
each time a consumer finishes.  When the count reaches zero the entry is out
of scope and may be retired (offered for materialization, then evicted).
Counting consumers instead of positions in a fixed execution order is what
allows the parallel engine to execute DAG branches concurrently: scope is a
property of which consumers completed, not of where the node sits in a
serial walk.

All cache operations are guarded by a reentrant lock so a cache instance can
be shared between the scheduler thread and worker threads of the parallel
execution engine.

Both caches track the statistics needed for Figure 10 (peak and average
memory) via :meth:`snapshot_bytes`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..exceptions import ExecutionError
from ..storage.serialization import estimate_size_bytes

__all__ = ["CacheEntry", "OperatorCache", "EagerCache", "LRUCache"]


class CacheEntry:
    """One cached operator output and its estimated in-memory size."""

    __slots__ = ("value", "size_bytes")

    def __init__(self, value: Any, size_bytes: Optional[int] = None):
        self.value = value
        self.size_bytes = estimate_size_bytes(value) if size_bytes is None else int(size_bytes)


class OperatorCache:
    """Base cache: a thread-safe mapping from node name to :class:`CacheEntry`."""

    def __init__(self) -> None:
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._consumers: Dict[str, int] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ basics
    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def put(self, name: str, value: Any, size_bytes: Optional[int] = None) -> CacheEntry:
        entry = CacheEntry(value, size_bytes)
        with self._lock:
            self._entries[name] = entry
            self._on_put(name)
        return entry

    def get(self, name: str) -> Any:
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise ExecutionError(f"value for node {name!r} is not cached")
            self._on_get(name)
            return entry.value

    def evict(self, name: str) -> Optional[CacheEntry]:
        with self._lock:
            self._consumers.pop(name, None)
            return self._entries.pop(name, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._consumers.clear()

    def snapshot_bytes(self) -> int:
        """Total estimated bytes currently held in the cache."""
        with self._lock:
            return sum(entry.size_bytes for entry in self._entries.values())

    # ------------------------------------------------------------------ scope refcounts
    def set_consumers(self, name: str, count: int) -> None:
        """Register how many consumers have yet to read ``name``.

        A count of zero means the entry is out of scope immediately (a node
        with no executing children).
        """
        if count < 0:
            raise ExecutionError(f"consumer count for {name!r} must be non-negative")
        with self._lock:
            self._consumers[name] = int(count)

    def consumers(self, name: str) -> int:
        """Outstanding consumer count for ``name`` (0 when unregistered)."""
        with self._lock:
            return self._consumers.get(name, 0)

    def release(self, name: str) -> bool:
        """One consumer of ``name`` finished; return True when it hits zero.

        The transition to zero is reported exactly once, which is what makes
        it safe for the engine to retire the entry on a True return even when
        multiple children complete concurrently.
        """
        with self._lock:
            count = self._consumers.get(name)
            if count is None or count <= 0:
                return False
            count -= 1
            self._consumers[name] = count
            return count == 0

    # ------------------------------------------------------------------ hooks
    def _on_put(self, name: str) -> None:  # pragma: no cover - default no-op
        return

    def _on_get(self, name: str) -> None:  # pragma: no cover - default no-op
        return


class EagerCache(OperatorCache):
    """Helix's cache: unlimited capacity, eviction driven by the execution engine.

    The engine evicts entries the moment the reference counts say they are
    out of scope, so the cache itself needs no replacement policy.
    """


class LRUCache(OperatorCache):
    """Capacity-bounded least-recently-used cache (the Spark-like baseline).

    ``capacity_bytes`` bounds the total estimated size; inserting a new entry
    evicts least-recently-used entries until the new entry fits.  Evicted
    values are simply dropped (a baseline system would recompute them),
    which is exactly the failure mode the paper attributes to KeystoneML's
    caching of training data.
    """

    def __init__(self, capacity_bytes: int):
        super().__init__()
        if capacity_bytes <= 0:
            raise ExecutionError("LRU cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.evicted_by_pressure: List[str] = []

    def _on_put(self, name: str) -> None:
        self._entries.move_to_end(name)
        self._shrink(protect=name)

    def _on_get(self, name: str) -> None:
        self._entries.move_to_end(name)

    def _shrink(self, protect: str) -> None:
        while self.snapshot_bytes() > self.capacity_bytes and len(self._entries) > 1:
            oldest = next(iter(self._entries))
            if oldest == protect:
                # Never evict the entry we are protecting; rotate it to the end.
                self._entries.move_to_end(oldest)
                oldest = next(iter(self._entries))
                if oldest == protect:
                    break
            self.evict(oldest)
            self.evicted_by_pressure.append(oldest)
