"""Backwards-compatibility shims from the PR 2 serial/parallel engine split.

.. deprecated::
    The execution layer is now a single :class:`ExecutionEngine` lifecycle
    parameterized by a pluggable :class:`~repro.execution.executors.Executor`
    strategy (``"inline"`` | ``"thread"`` | ``"process"`` |
    ``"distributed"``; see ``docs/executors.md``).  There never was a
    separate serial or parallel engine class hierarchy to return to — this
    module remains only so existing imports keep working:

    * :class:`ParallelExecutionEngine` — alias for
      ``ExecutionEngine(executor="thread")``.
    * :func:`create_engine` — re-export of
      :func:`repro.execution.engine.create_engine`, which still accepts the
      legacy engine names ``"serial"`` and ``"parallel"`` as aliases for
      ``"inline"`` and ``"thread"``.
    * :data:`ENGINE_NAMES` — the legacy name tuple.

    New code should use :func:`repro.execution.create_engine` with an
    executor name, or construct :class:`ExecutionEngine` directly.
"""

from __future__ import annotations

from typing import Optional

from .engine import ExecutionEngine, create_engine
from .executors import default_max_workers

__all__ = ["ParallelExecutionEngine", "create_engine", "default_max_workers", "ENGINE_NAMES"]

#: Legacy engine names (deprecated aliases for the "inline"/"thread" executors).
ENGINE_NAMES = ("serial", "parallel")


class ParallelExecutionEngine(ExecutionEngine):
    """Deprecated alias: :class:`ExecutionEngine` pinned to the thread executor.

    Accepts the same arguments as :class:`ExecutionEngine` (minus
    ``executor``) plus ``max_workers``.  With ``max_workers=1`` the engine
    degenerates to a queue-ordered serial execution and is primarily useful
    for testing.
    """

    def __init__(self, *args, max_workers: Optional[int] = None, **kwargs):
        kwargs.setdefault("executor", "thread")
        super().__init__(*args, max_workers=max_workers, **kwargs)
