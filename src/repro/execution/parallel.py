"""Parallel DAG execution: dispatch ready nodes onto a thread pool.

:class:`ParallelExecutionEngine` executes the same physical plans as the
serial :class:`~repro.execution.engine.ExecutionEngine`, but instead of
walking the topological order one node at a time it submits every node whose
parents have all resolved to a ``ThreadPoolExecutor`` (configurable
``max_workers``).  Wide DAGs — the Figure 7 scalability workloads, the
multi-featurizer NLP/census pipelines — therefore run their independent
branches concurrently; latency-bound operators (I/O, store loads, external
services) overlap even on a single core.

Equivalence contract
--------------------
The parallel engine produces the *same run statistics* as the serial engine
(outputs, node states, charged node/component times under a deterministic
cost model, materialization decisions and materialized-node sets); only
wall-clock and the memory-residency profile may differ.  Two mechanisms
guarantee this:

* **Reference-counted scope tracking** — a cached value is retired only
  after all of its executing consumers completed (the same refcounts the
  serial engine uses), so an operator can never observe a missing input.
* **Deterministic retirement commits** — out-of-scope nodes are *committed*
  (streaming materialization decision, store write, eviction) by the
  scheduler thread in exactly the order the serial engine would retire them:
  sorted by out-of-scope position in the topological order, then by name.
  Because the streaming policy's cumulative run time (Definition 6) reads
  only the node's *ancestors* — which have necessarily completed — and the
  storage-budget sequence is fixed by the commit order, every decision
  matches the serial engine's bit for bit.

Thread-safety contract for operators
------------------------------------
``Operator.run`` implementations must be safe to call concurrently with
*other* operators' ``run`` (each node still runs at most once): no mutation
of shared global state, no reliance on execution order beyond declared DAG
edges.  All library operators satisfy this; custom operators that mutate
shared state must either synchronize internally or be run with
``max_workers=1``.
"""

from __future__ import annotations

import os
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Mapping, Optional, Set

from ..core.dag import WorkflowDAG
from ..exceptions import ExecutionError
from ..optimizer.oep import ExecutionPlan, NodeState
from ..optimizer.pruning import out_of_scope_after
from ..storage.serialization import estimate_size_bytes
from .engine import ExecutionEngine
from .tracker import MemoryTracker, RunStats

__all__ = ["ParallelExecutionEngine", "create_engine", "default_max_workers", "ENGINE_NAMES"]

#: Names accepted by :func:`create_engine` and ``System.configure_engine``.
ENGINE_NAMES = ("serial", "parallel")


def default_max_workers() -> int:
    """Default worker count: enough to overlap latency on small machines."""
    return min(32, (os.cpu_count() or 1) + 4)


class ParallelExecutionEngine(ExecutionEngine):
    """Executes physical plans with DAG-level parallelism.

    Accepts the same arguments as :class:`ExecutionEngine` plus
    ``max_workers``.  With ``max_workers=1`` the engine degenerates to a
    (queue-ordered) serial execution and is primarily useful for testing.
    """

    def __init__(self, *args, max_workers: Optional[int] = None, **kwargs):
        super().__init__(*args, **kwargs)
        if max_workers is not None and max_workers < 1:
            raise ExecutionError("max_workers must be at least 1")
        self.max_workers = int(max_workers) if max_workers is not None else default_max_workers()

    # ------------------------------------------------------------------ public
    def execute(
        self,
        dag: WorkflowDAG,
        plan: ExecutionPlan,
        signatures: Mapping[str, str],
        iteration: int = 0,
    ) -> RunStats:
        """Run one iteration according to ``plan`` and return its statistics."""
        self._validate(dag, plan, signatures)
        self.cache.clear()
        memory = MemoryTracker()
        stats = self._new_run_stats(dag, plan, iteration)

        order = self._execution_order(dag, plan)
        if not order:
            return self._finalize_run(stats, memory)
        executing: Set[str] = set(order)
        consumers = self._consumer_counts(dag, executing)
        pending_parents = {
            name: len({p for p in dag.node(name).parents if p in executing})
            for name in order
        }

        # The serial engine's retirement sequence: out-of-scope position in
        # the topological order, ties broken by name.  Commits follow this
        # order exactly (see module docstring).
        scope = out_of_scope_after(dag, order)
        retirement_order = sorted(order, key=lambda n: (scope[n], n))
        retire_index = 0
        out_of_scope: Set[str] = set()

        completed: Set[str] = set()
        results: "queue.Queue" = queue.Queue()
        failure: Optional[BaseException] = None

        pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-exec"
        )

        def submit(name: str) -> None:
            future = pool.submit(
                self._run_node, dag, name, plan.states[name], signatures[name]
            )
            future.add_done_callback(lambda f, n=name: results.put((n, f)))

        try:
            for name in order:
                if pending_parents[name] == 0:
                    submit(name)

            while len(completed) < len(order):
                name, future = results.get()
                try:
                    value, charged = future.result()
                except BaseException as exc:  # noqa: BLE001 - surfaced after cleanup
                    failure = exc
                    break

                node = dag.node(name)
                size_bytes = estimate_size_bytes(value)
                self.cache.put(name, value, size_bytes)
                self.cache.set_consumers(name, consumers[name])
                stats.node_times[name] = charged
                stats.node_sizes[name] = size_bytes
                if node.is_output:
                    stats.outputs[name] = value
                completed.add(name)
                memory.snapshot(self.cache.snapshot_bytes())

                if consumers[name] == 0:
                    out_of_scope.add(name)
                for parent in {p for p in node.parents if p in executing}:
                    if self.cache.release(parent):
                        out_of_scope.add(parent)

                for child in {c for c in dag.children(name) if c in executing}:
                    pending_parents[child] -= 1
                    if pending_parents[child] == 0:
                        submit(child)

                while (
                    retire_index < len(retirement_order)
                    and retirement_order[retire_index] in out_of_scope
                ):
                    retired = retirement_order[retire_index]
                    self._retire_node(dag, retired, signatures[retired], stats, iteration)
                    memory.snapshot(self.cache.snapshot_bytes())
                    retire_index += 1
        finally:
            # On failure this cancels every not-yet-started future and waits
            # for in-flight operators to drain before surfacing the error.
            pool.shutdown(wait=True, cancel_futures=True)

        if failure is not None:
            self.cache.clear()
            raise failure

        self._restore_deterministic_order(dag, stats, order)
        return self._finalize_run(stats, memory)

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _restore_deterministic_order(
        dag: WorkflowDAG, stats: RunStats, order: List[str]
    ) -> None:
        """Rebuild completion-ordered mappings in topological order.

        Nodes complete in a nondeterministic order, so ``node_times``,
        ``node_sizes`` and ``outputs`` are re-keyed to the serial engine's
        iteration order, and ``component_times`` is re-accumulated in that
        order so even the floating-point summation sequence matches.
        """
        stats.node_times = {name: stats.node_times[name] for name in order}
        stats.node_sizes = {name: stats.node_sizes[name] for name in order}
        stats.outputs = {
            name: stats.outputs[name] for name in order if name in stats.outputs
        }
        component_times: Dict[str, float] = {}
        for name in order:
            component = dag.node(name).component.value
            component_times[component] = (
                component_times.get(component, 0.0) + stats.node_times[name]
            )
        stats.component_times = component_times


def create_engine(
    engine: str = "serial",
    *,
    max_workers: Optional[int] = None,
    **kwargs,
) -> ExecutionEngine:
    """Build an execution engine by name (``"serial"`` or ``"parallel"``).

    ``max_workers`` only applies to the parallel engine; remaining keyword
    arguments are forwarded to the engine constructor.
    """
    if engine not in ENGINE_NAMES:
        raise ExecutionError(
            f"unknown execution engine {engine!r}; expected one of {list(ENGINE_NAMES)}"
        )
    if engine == "parallel":
        return ParallelExecutionEngine(max_workers=max_workers, **kwargs)
    return ExecutionEngine(**kwargs)
