"""Plain-text reporting helpers for the benchmark harness.

The paper presents its results as plots; the benchmark harness prints the
underlying series as aligned text tables so they can be inspected (and
recorded in EXPERIMENTS.md) without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

__all__ = ["format_series_table", "format_breakdown_table", "format_fraction_table", "format_memory_table"]


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4f}"
    return str(value)


def format_series_table(series: Mapping[str, Sequence[float]], title: str = "", unit: str = "s") -> str:
    """Render one row per named series, one column per iteration."""
    lines: List[str] = []
    if title:
        lines.append(title)
    names = [name for name in series if not name.startswith("_")]
    length = max((len(series[name]) for name in names), default=0)
    header = "iteration".ljust(18) + "".join(f"{i:>12d}" for i in range(length))
    lines.append(header)
    for name in names:
        values = list(series[name])
        row = name.ljust(18)
        for i in range(length):
            row += f"{_format_value(values[i]) if i < len(values) else '-':>12}"
        lines.append(row + f"  [{unit}]")
    return "\n".join(lines)


def format_breakdown_table(breakdowns: Sequence[Mapping[str, float]], title: str = "") -> str:
    """Render per-iteration component breakdowns (Figure 6 style)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    components = ["DPR", "L/I", "PPR", "Mat."]
    lines.append("iteration".ljust(12) + "".join(c.rjust(12) for c in components))
    for index, breakdown in enumerate(breakdowns):
        row = str(index).ljust(12)
        for component in components:
            row += f"{breakdown.get(component, 0.0):>12.4f}"
        lines.append(row)
    return "\n".join(lines)


def format_fraction_table(fractions: Sequence[Mapping[str, float]], title: str = "") -> str:
    """Render per-iteration state fractions (Figure 8 style)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    states = ["Sp", "Sl", "Sc"]
    lines.append("iteration".ljust(12) + "".join(s.rjust(10) for s in states))
    for index, row_values in enumerate(fractions):
        row = str(index).ljust(12)
        for state in states:
            row += f"{row_values.get(state, 0.0):>10.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_memory_table(memory: Sequence[Mapping[str, float]], title: str = "") -> str:
    """Render per-iteration peak/average memory (Figure 10 style)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("iteration".ljust(12) + "peak (KB)".rjust(16) + "avg (KB)".rjust(16))
    for index, row_values in enumerate(memory):
        lines.append(
            str(index).ljust(12)
            + f"{row_values.get('peak', 0.0) / 1024:>16.1f}"
            + f"{row_values.get('average', 0.0) / 1024:>16.1f}"
        )
    return "\n".join(lines)
