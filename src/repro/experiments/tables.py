"""Table 2: workflow characteristics and per-system support matrix."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..workloads.base import WORKLOADS, WorkloadCharacteristics, get_workload

__all__ = ["table2_rows", "format_table2"]

_ROW_ORDER = ("census", "genomics", "nlp", "mnist")

_ATTRIBUTES = (
    ("Num. Data Source", "num_data_sources"),
    ("Input to Example Mapping", "input_to_example"),
    ("Feature Granularity", "feature_granularity"),
    ("Learning Task Type", "learning_task"),
    ("Application Domain", "application_domain"),
    ("Supported by HELIX", "supported_by_helix"),
    ("Supported by KeystoneML", "supported_by_keystoneml"),
    ("Supported by DeepDive", "supported_by_deepdive"),
)


def table2_rows(workload_names: Sequence[str] = _ROW_ORDER) -> Dict[str, Dict[str, object]]:
    """The Table 2 contents keyed by attribute name, one column per workload."""
    characteristics: List[WorkloadCharacteristics] = [
        get_workload(name).characteristics() for name in workload_names if name in WORKLOADS
    ]
    rows: Dict[str, Dict[str, object]] = {}
    for label, attribute in _ATTRIBUTES:
        rows[label] = {c.name: getattr(c, attribute) for c in characteristics}
    return rows


def format_table2(workload_names: Sequence[str] = _ROW_ORDER) -> str:
    """Render Table 2 as a fixed-width text table."""
    rows = table2_rows(workload_names)
    columns = list(next(iter(rows.values())).keys()) if rows else []
    width_label = max((len(label) for label in rows), default=10) + 2
    width_column = 28
    lines = ["".ljust(width_label) + "".join(c.ljust(width_column) for c in columns)]
    for label, values in rows.items():
        rendered = []
        for column in columns:
            value = values[column]
            if isinstance(value, bool):
                value = "yes" if value else "-"
            rendered.append(str(value).ljust(width_column))
        lines.append(label.ljust(width_label) + "".join(rendered))
    return "\n".join(lines)
