"""Experiment runner: drive a system through a multi-iteration workflow lifecycle.

The runner reproduces the experimental procedure of Section 6.3: starting
from the initial workflow configuration, it samples a deterministic sequence
of iteration types from the workload's domain frequencies, applies one
modification per iteration, rebuilds the workflow, hands it to the system
under test, and records the per-iteration :class:`RunStats`.  The resulting
:class:`LifecycleResult` exposes the derived series the figures need
(cumulative run time, storage, memory, state fractions).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ExecutionError
from ..execution.tracker import RunStats
from ..systems.base import System
from ..workloads.base import Workload, get_workload
from ..workloads.iterations import IterationSpec, build_iteration_plan

__all__ = ["LifecycleResult", "run_lifecycle", "run_comparison"]


@dataclass
class LifecycleResult:
    """All statistics collected while running one system over one lifecycle."""

    system_name: str
    workload_name: str
    iterations: List[RunStats] = field(default_factory=list)
    plan: List[IterationSpec] = field(default_factory=list)

    # ------------------------------------------------------------------ series
    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    def iteration_times(self) -> List[float]:
        """Per-iteration total run time (execution + materialization)."""
        return [stats.total_time for stats in self.iterations]

    def cumulative_times(self) -> List[float]:
        """Cumulative run time after each iteration (the Figure 5 series)."""
        return list(np.cumsum(self.iteration_times()))

    def total_time(self) -> float:
        return float(sum(self.iteration_times()))

    def storage_series(self) -> List[int]:
        """Storage snapshot at the end of each iteration (Figure 9c/d)."""
        return [stats.storage_bytes for stats in self.iterations]

    def memory_series(self) -> List[Dict[str, float]]:
        """Peak and average memory per iteration (Figure 10)."""
        return [
            {"peak": float(stats.peak_memory_bytes), "average": float(stats.average_memory_bytes)}
            for stats in self.iterations
        ]

    def state_fraction_series(self) -> List[Dict[str, float]]:
        """Fraction of nodes in Sp / Sl / Sc per iteration (Figure 8)."""
        return [stats.state_fractions() for stats in self.iterations]

    def component_breakdowns(self) -> List[Dict[str, float]]:
        """Per-iteration run time broken down by component (Figure 6)."""
        return [stats.component_breakdown() for stats in self.iterations]

    def iteration_types(self) -> List[str]:
        return [spec.kind for spec in self.plan]

    def summary(self) -> Dict[str, Any]:
        return {
            "system": self.system_name,
            "workload": self.workload_name,
            "iterations": self.num_iterations,
            "cumulative_time": self.total_time(),
            "final_storage_bytes": self.storage_series()[-1] if self.iterations else 0,
        }


def run_lifecycle(
    system: System,
    workload: Workload | str,
    n_iterations: int = 0,
    seed: int = 7,
    scale: float = 1.0,
    reset: bool = True,
    plan: Optional[Sequence[IterationSpec]] = None,
    executor: Optional[str] = None,
    engine: Optional[str] = None,
    max_workers: Optional[int] = None,
    workers: Optional[Sequence[str]] = None,
    on_iteration: Optional[Callable[[IterationSpec, RunStats], None]] = None,
) -> LifecycleResult:
    """Run ``system`` through a full iterative lifecycle of ``workload``.

    Parameters
    ----------
    n_iterations:
        Total number of iterations including the initial run; 0 means the
        paper's default for the workload's domain.
    seed:
        Seed for both the iteration plan and the modification choices, so
        that every system sees the same sequence of changes.
    scale:
        Dataset scale factor (1.0 = default size, 10.0 = the 10x experiment).
    plan:
        Explicit iteration plan; overrides sampling when provided.
    executor:
        When given, reconfigure the system to run iterations on this
        executor strategy (``"inline"``, ``"thread"``, ``"process"`` or
        ``"distributed"``); ``None`` keeps the system's current
        configuration.  The pool-heavy names (``"process"``,
        ``"distributed"``) are auto-pooled: the system builds one worker
        pool, reuses it across every iteration of the lifecycle, and owns
        its close (``system.close_executor()``; see ``docs/executors.md``).
    engine:
        Deprecated alias for ``executor`` accepting the PR 2 engine names
        (``"serial"`` -> ``"inline"``, ``"parallel"`` -> ``"thread"``).
    max_workers:
        Worker count for pool-backed executors (only used with
        ``executor``/``engine``).
    workers:
        Remote worker addresses (``"host:port"``) for the distributed
        executor's address-configured mode — pre-started ``python -m
        repro.execution.worker`` processes the coordinator connects to
        instead of spawning local workers.  Only valid with
        ``executor="distributed"``.
    on_iteration:
        Invoked as ``on_iteration(spec, stats)`` after each iteration
        completes — the ``repro serve`` daemon uses it to stream run
        progress to submitters while the lifecycle is still executing.
        Exceptions it raises abort the lifecycle.

    Returns
    -------
    A :class:`LifecycleResult` with one :class:`RunStats` per iteration and
    the derived series the figures need.

    Raises
    ------
    ExecutionError
        On an unknown executor name, invalid worker count or worker
        address, or ``workers`` combined with a non-distributed executor.
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    if engine is not None and executor is None:
        warnings.warn(
            "run_lifecycle(engine=...) is deprecated; use executor= "
            '("serial" -> "inline", "parallel" -> "thread")',
            DeprecationWarning,
            stacklevel=2,
        )
        executor = engine
    if workers is not None and executor is None:
        # Without this the addresses would be silently dropped and the
        # lifecycle would run on the system's existing configuration.
        raise ExecutionError(
            'workers=["host:port", ...] requires executor="distributed" '
            "in the same call"
        )
    if executor is not None:
        system.configure_executor(executor, max_workers, workers=workers)
    if reset:
        system.reset()
    resolved_plan = list(plan) if plan is not None else build_iteration_plan(
        workload.domain, n_iterations, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    config = workload.initial_config(scale=scale, seed=seed)
    result = LifecycleResult(
        system_name=system.name, workload_name=workload.name, plan=resolved_plan
    )
    for spec in resolved_plan:
        config = workload.apply_iteration(config, spec, rng)
        wf = workload.build(config)
        stats = system.run_iteration(wf, iteration=spec.index, iteration_type=spec.kind)
        stats.workflow_name = workload.name
        result.iterations.append(stats)
        if on_iteration is not None:
            on_iteration(spec, stats)
    return result


def run_comparison(
    systems: Sequence[System],
    workload: Workload | str,
    n_iterations: int = 0,
    seed: int = 7,
    scale: float = 1.0,
    skip_unsupported: bool = True,
    executor: Optional[str] = None,
    engine: Optional[str] = None,
    max_workers: Optional[int] = None,
    workers: Optional[Sequence[str]] = None,
) -> Dict[str, LifecycleResult]:
    """Run several systems over the identical lifecycle and return results by name.

    ``executor``/``max_workers``/``workers`` reconfigure every system's
    executor strategy for the comparison (``engine`` is the deprecated
    name-alias form); ``None`` keeps each system's own configuration.
    Address-configured remote workers (``workers``) serve one coordinator
    session at a time, so when addresses are given each system's owned
    coordinator session is closed as soon as its lifecycle ends — the next
    system can then connect to the same workers.

    Pool ownership: an auto-pooled executor name (``"process"``,
    ``"distributed"``) gives **each** system an owned worker pool that stays
    warm after this call returns — release them with
    ``system.close_executor()`` per system (or run each inside
    ``with system: ...``) once you are done comparing; see
    ``docs/executors.md``.  Distributed workers are daemon processes and die
    with the interpreter; a warm ``"process"`` pool is joined at interpreter
    exit, so skipping the close delays exit rather than leaking.
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    plan = build_iteration_plan(workload.domain, n_iterations, seed=seed)
    results: Dict[str, LifecycleResult] = {}
    for system in systems:
        if skip_unsupported and not system.supports(workload.name):
            continue
        try:
            results[system.name] = run_lifecycle(
                system,
                workload,
                n_iterations=n_iterations,
                seed=seed,
                scale=scale,
                plan=plan,
                executor=executor,
                engine=engine,
                max_workers=max_workers,
                workers=workers,
            )
        finally:
            if workers is not None:
                # A listening remote worker serves one coordinator at a
                # time: release this system's session — even when the
                # lifecycle failed — so the next system (or a retry) can
                # connect to the same addresses.
                system.close_executor()
    return results
