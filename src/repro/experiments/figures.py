"""Figure-level experiment drivers.

Every figure in the paper's evaluation has a function here that runs the
necessary lifecycles and returns the plotted series as plain dictionaries /
lists (the benchmark harness prints them; no plotting dependency is needed).

===========  ================================================================
Function      Paper figure
===========  ================================================================
``figure5``   Cumulative run time, Helix vs KeystoneML vs DeepDive (per workload)
``figure6``   Per-iteration run-time breakdown by component for Helix
``figure7a``  Dataset-size scalability (Census vs Census 10x)
``figure7b``  Cluster-size scalability (2/4/8 workers, Census 10x)
``figure8``   Fraction of nodes in Sp/Sl/Sc, Helix OPT vs Helix AM
``figure9``   Materialization policies: cumulative time and storage
``figure10``  Peak / average memory per iteration for Helix
===========  ================================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..execution.clock import ClusterModel, MeasuredCostModel
from ..systems.deepdive import DeepDiveSystem
from ..systems.helix import HelixSystem
from ..systems.keystoneml import KeystoneMLSystem
from .runner import LifecycleResult, run_comparison, run_lifecycle

__all__ = [
    "figure5",
    "figure6",
    "figure7a",
    "figure7b",
    "figure8",
    "figure9",
    "figure10",
    "speedup",
]


def _default_systems(seed: int = 0) -> List:
    return [HelixSystem.opt(seed=seed), KeystoneMLSystem(seed=seed), DeepDiveSystem(seed=seed)]


def speedup(results: Dict[str, LifecycleResult], baseline: str, target: str = "helix-opt") -> float:
    """Cumulative run-time ratio ``baseline / target`` (the paper's headline metric)."""
    if baseline not in results or target not in results:
        return float("nan")
    target_time = results[target].total_time()
    if target_time <= 0:
        return float("inf")
    return results[baseline].total_time() / target_time


def figure5(
    workload: str,
    n_iterations: int = 0,
    seed: int = 7,
    scale: float = 1.0,
    systems: Optional[Sequence] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """Cumulative run time per iteration for every system supporting the workload."""
    results = run_comparison(
        list(systems) if systems is not None else _default_systems(seed),
        workload,
        n_iterations=n_iterations,
        seed=seed,
        scale=scale,
    )
    series = {
        name: {
            "cumulative": result.cumulative_times(),
            "per_iteration": result.iteration_times(),
            "iteration_types": result.iteration_types(),
        }
        for name, result in results.items()
    }
    series["_speedups"] = {
        "vs_keystoneml": [speedup(results, "keystoneml")],
        "vs_deepdive": [speedup(results, "deepdive")],
    }
    return series


def figure6(workload: str, n_iterations: int = 0, seed: int = 7) -> List[Dict[str, float]]:
    """Per-iteration breakdown (DPR / L/I / PPR / Mat.) for Helix OPT."""
    result = run_lifecycle(HelixSystem.opt(seed=seed), workload, n_iterations=n_iterations, seed=seed)
    return result.component_breakdowns()


def figure7a(
    n_iterations: int = 0, seed: int = 7, scales: Sequence[float] = (1.0, 10.0)
) -> Dict[str, Dict[str, List[float]]]:
    """Census vs Census Nx cumulative run times for Helix and KeystoneML."""
    output: Dict[str, Dict[str, List[float]]] = {}
    for scale in scales:
        label = f"x{scale:g}"
        results = run_comparison(
            [HelixSystem.opt(seed=seed), KeystoneMLSystem(seed=seed)],
            "census",
            n_iterations=n_iterations,
            seed=seed,
            scale=scale,
        )
        for name, result in results.items():
            output[f"{name}-{label}"] = {"cumulative": result.cumulative_times()}
    return output


def figure7b(
    n_iterations: int = 0,
    seed: int = 7,
    worker_counts: Sequence[int] = (2, 4, 8),
    scale: float = 2.0,
) -> Dict[str, Dict[str, List[float]]]:
    """Cluster scalability: cumulative run time on 2/4/8 simulated workers.

    Helix's semantic-unit loop fusion lets DPR scale super-linearly for small
    clusters but its tiny PPR reducers pay per-worker communication overhead;
    KeystoneML scales roughly linearly with a lower efficiency.
    """
    output: Dict[str, Dict[str, List[float]]] = {}
    for workers in worker_counts:
        helix_cluster = ClusterModel(
            num_workers=workers,
            parallel_efficiency={"DPR": 1.35, "L/I": 0.9, "PPR": 0.0},
            communication_overhead=0.004,
        )
        keystone_cluster = ClusterModel(
            num_workers=workers,
            parallel_efficiency={"DPR": 0.8, "L/I": 0.8, "PPR": 0.0},
            communication_overhead=0.002,
        )
        helix = HelixSystem.opt(seed=seed, cost_model=MeasuredCostModel(cluster=helix_cluster))
        keystone = KeystoneMLSystem(seed=seed, cost_model=MeasuredCostModel(cluster=keystone_cluster))
        results = run_comparison(
            [helix, keystone], "census", n_iterations=n_iterations, seed=seed, scale=scale
        )
        for name, result in results.items():
            output[f"{name}-{workers}w"] = {"cumulative": result.cumulative_times()}
    return output


def figure8(
    workloads: Sequence[str] = ("census", "genomics"),
    n_iterations: int = 0,
    seed: int = 7,
) -> Dict[str, Dict[str, List[Dict[str, float]]]]:
    """State fractions per iteration for Helix OPT and Helix AM."""
    output: Dict[str, Dict[str, List[Dict[str, float]]]] = {}
    for workload in workloads:
        opt = run_lifecycle(HelixSystem.opt(seed=seed), workload, n_iterations=n_iterations, seed=seed)
        am = run_lifecycle(
            HelixSystem.always_materialize(seed=seed), workload, n_iterations=n_iterations, seed=seed
        )
        output[workload] = {
            "helix-opt": opt.state_fraction_series(),
            "helix-am": am.state_fraction_series(),
        }
    return output


def figure9(
    workload: str,
    n_iterations: int = 0,
    seed: int = 7,
    include_am: bool = True,
) -> Dict[str, Dict[str, List[float]]]:
    """Materialization-policy ablation: OPT vs AM vs NM cumulative time and storage."""
    systems = [HelixSystem.opt(seed=seed), HelixSystem.never_materialize(seed=seed)]
    if include_am:
        systems.insert(1, HelixSystem.always_materialize(seed=seed))
    output: Dict[str, Dict[str, List[float]]] = {}
    for system in systems:
        result = run_lifecycle(system, workload, n_iterations=n_iterations, seed=seed)
        output[system.name] = {
            "cumulative": result.cumulative_times(),
            "storage": [float(v) for v in result.storage_series()],
        }
    return output


def figure10(
    workloads: Sequence[str] = ("census", "genomics", "nlp", "mnist"),
    n_iterations: int = 0,
    seed: int = 7,
) -> Dict[str, List[Dict[str, float]]]:
    """Peak and average memory per iteration for Helix OPT."""
    output: Dict[str, List[Dict[str, float]]] = {}
    for workload in workloads:
        result = run_lifecycle(HelixSystem.opt(seed=seed), workload, n_iterations=n_iterations, seed=seed)
        output[workload] = result.memory_series()
    return output
