"""Experiment harness: lifecycle runner, figure drivers, tables and reports."""

from .figures import figure5, figure6, figure7a, figure7b, figure8, figure9, figure10, speedup
from .report import (
    format_breakdown_table,
    format_fraction_table,
    format_memory_table,
    format_series_table,
)
from .runner import LifecycleResult, run_comparison, run_lifecycle
from .tables import format_table2, table2_rows

__all__ = [
    "figure5",
    "figure6",
    "figure7a",
    "figure7b",
    "figure8",
    "figure9",
    "figure10",
    "speedup",
    "format_breakdown_table",
    "format_fraction_table",
    "format_memory_table",
    "format_series_table",
    "LifecycleResult",
    "run_comparison",
    "run_lifecycle",
    "format_table2",
    "table2_rows",
]
