"""Workload adapter interface and registry.

A *workload* packages everything an experiment needs for one of the paper's
four applications:

* a configuration dataclass describing the current version of the workflow,
* a deterministic synthetic data generator,
* a :func:`build` function turning a configuration into a
  :class:`~repro.core.workflow.Workflow`,
* an :func:`apply_iteration` function that mutates the configuration the way
  a developer of that domain would for a given iteration type (DPR / L/I /
  PPR), and
* the Table-2 characteristics used by the use-case-support experiment.

Workloads register themselves in :data:`WORKLOADS` so the experiment runner
and benchmarks can enumerate them by name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.workflow import Workflow
from .iterations import IterationSpec

__all__ = ["WorkloadCharacteristics", "Workload", "WORKLOADS", "register", "get_workload"]


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """The Table 2 row for a workload."""

    name: str
    domain: str
    application_domain: str
    num_data_sources: str
    input_to_example: str
    feature_granularity: str
    learning_task: str
    supported_by_helix: bool = True
    supported_by_keystoneml: bool = False
    supported_by_deepdive: bool = False


class Workload(ABC):
    """Base class for the four evaluation workloads."""

    #: Short identifier used by benchmarks and the registry.
    name: str = "workload"
    #: Domain key into :data:`~repro.workloads.iterations.DOMAIN_FREQUENCIES`.
    domain: str = "social_sciences"

    @abstractmethod
    def characteristics(self) -> WorkloadCharacteristics:
        """The workload's Table 2 characteristics."""

    @abstractmethod
    def initial_config(self, scale: float = 1.0, seed: int = 0) -> Any:
        """The configuration for iteration 0 (``scale`` multiplies dataset size)."""

    @abstractmethod
    def apply_iteration(self, config: Any, spec: IterationSpec, rng: np.random.Generator) -> Any:
        """Return a new configuration reflecting one developer modification."""

    @abstractmethod
    def build(self, config: Any) -> Workflow:
        """Build the workflow for a configuration."""

    def describe(self) -> Dict[str, Any]:
        """A summary dictionary used in reports."""
        characteristics = self.characteristics()
        return {
            "name": characteristics.name,
            "domain": characteristics.application_domain,
            "task": characteristics.learning_task,
        }


#: Registry of available workloads by name.
WORKLOADS: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    """Register a workload instance under its name (idempotent)."""
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}") from None
