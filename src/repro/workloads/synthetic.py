"""Synthetic DAG generators for the scalability benchmarks and the
engine-equivalence harness.

Three families of DAGs are produced:

* :func:`make_wide_dag` — the Figure 7-style scalability shape: one source
  fanning out into ``branches`` independent operator chains that join into a
  single output.  With ``node_seconds > 0`` every node carries a modelled
  latency (a real ``time.sleep``), which is what the latency-bound executor
  benchmark uses: such work overlaps across threads even on a single core,
  exactly like the store loads and external calls it stands in for.
* :func:`make_cpu_dag` — the same wide topology built from
  :class:`CpuBoundOperator` nodes: pure-Python arithmetic that holds the GIL
  for its entire duration.  This is the workload shape where the thread
  executor provably does *not* scale (its workers serialize on the GIL)
  while the process executor does — the CPU-bound half of the Figure 7c
  comparison.
* :func:`make_random_dag` — seeded random layered DAGs with configurable
  width/depth and edge density, used by the equivalence suite to exercise
  many LOAD/COMPUTE/PRUNE mixes and materialization policies.

All operators are deterministic pure functions of their inputs and
configuration (and picklable), so any two executors (or repeated runs) must
produce identical values — the property the equivalence tests pin down.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.dag import Node, WorkflowDAG
from ..core.operators import Component, Operator, RunContext

__all__ = [
    "LatencyOperator",
    "CpuBoundOperator",
    "make_wide_dag",
    "make_cpu_dag",
    "make_random_dag",
]

_COMPONENTS = (Component.DPR, Component.LI, Component.PPR)


class LatencyOperator(Operator):
    """Deterministic arithmetic over float inputs with an optional modelled latency.

    Computes ``offset + scale * sum(inputs)`` (roots simply return
    ``offset``), optionally sleeping ``sleep_seconds`` first to emulate
    latency-bound work (I/O, network, an external service).  ``cost`` is the
    declared cost used by the simulated clock, keeping charged times
    deterministic regardless of the real sleep.
    """

    def __init__(
        self,
        offset: float = 0.0,
        scale: float = 1.0,
        sleep_seconds: float = 0.0,
        cost: float = 1.0,
        tag: str = "",
        component: Component = Component.DPR,
    ):
        self.offset = float(offset)
        self.scale = float(scale)
        self.sleep_seconds = float(sleep_seconds)
        self.cost = float(cost)
        self.tag = tag
        self.component = component

    def config(self) -> Dict[str, Any]:
        return {
            "offset": self.offset,
            "scale": self.scale,
            "sleep_seconds": self.sleep_seconds,
            "cost": self.cost,
            "tag": self.tag,
        }

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        return self.cost

    def run(self, inputs: Sequence[Any], context: RunContext) -> Any:
        if self.sleep_seconds > 0.0:
            time.sleep(self.sleep_seconds)
        total = self.offset
        for value in inputs:
            total += self.scale * float(value)
        return total


class CpuBoundOperator(Operator):
    """Deterministic pure-Python CPU-bound work (GIL-bound under threads).

    Iterates a 31-bit linear congruential generator ``spin`` times in a plain
    Python loop — work that never releases the GIL, so a thread pool cannot
    scale it while a process pool can.  The result deterministically mixes
    the final LCG state with ``offset + scale * sum(inputs)``, so every
    executor must produce bit-identical values.  ``cost`` is the declared
    cost used by the simulated clock, keeping charged times deterministic
    regardless of real CPU time.
    """

    def __init__(
        self,
        spin: int = 100_000,
        offset: float = 0.0,
        scale: float = 1.0,
        cost: float = 1.0,
        tag: str = "",
        component: Component = Component.DPR,
    ):
        self.spin = int(spin)
        self.offset = float(offset)
        self.scale = float(scale)
        self.cost = float(cost)
        self.tag = tag
        self.component = component

    def config(self) -> Dict[str, Any]:
        return {
            "spin": self.spin,
            "offset": self.offset,
            "scale": self.scale,
            "cost": self.cost,
            "tag": self.tag,
        }

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        return self.cost

    def run(self, inputs: Sequence[Any], context: RunContext) -> Any:
        state = (int(self.offset * 1000.0) * 2654435761 + 12345) & 0x7FFFFFFF
        for _ in range(self.spin):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        total = self.offset
        for value in inputs:
            total += self.scale * float(value)
        return total + (state % 997) * 1e-9


def make_wide_dag(
    branches: int = 8,
    depth: int = 3,
    node_seconds: float = 0.0,
    cost: float = 1.0,
    name: str = "wide",
) -> WorkflowDAG:
    """A source fanning into ``branches`` chains of ``depth`` nodes, joined at a sink.

    The resulting DAG has ``branches * depth + 2`` nodes; the sink is the
    single declared output.  This is the wide shape of the Figure 7
    scalability experiments where DAG-level parallelism pays off most.
    """
    if branches < 1 or depth < 1:
        raise ValueError("branches and depth must be at least 1")
    nodes: List[Node] = [
        Node.create(
            "source",
            LatencyOperator(offset=1.0, sleep_seconds=node_seconds, cost=cost, tag="source"),
        )
    ]
    tails: List[str] = []
    for branch in range(branches):
        previous = "source"
        for level in range(depth):
            node_name = f"b{branch}_n{level}"
            nodes.append(
                Node.create(
                    node_name,
                    LatencyOperator(
                        offset=float(branch + 1),
                        scale=1.0 + 0.1 * level,
                        sleep_seconds=node_seconds,
                        cost=cost,
                        tag=node_name,
                        component=_COMPONENTS[branch % len(_COMPONENTS)],
                    ),
                    parents=[previous],
                )
            )
            previous = node_name
        tails.append(previous)
    nodes.append(
        Node.create(
            "sink",
            LatencyOperator(offset=0.0, sleep_seconds=node_seconds, cost=cost, tag="sink"),
            parents=tails,
            is_output=True,
        )
    )
    return WorkflowDAG(nodes, name=name)


def make_cpu_dag(
    branches: int = 8,
    depth: int = 2,
    spin: int = 100_000,
    cost: float = 1.0,
    name: str = "cpu",
) -> WorkflowDAG:
    """The wide Figure 7 topology built from CPU-bound pure-Python operators.

    ``spin`` LCG iterations per branch node (the source and sink spin 1/20th
    of that, keeping the unavoidably serial critical path cheap).  With a
    thread executor this shape shows < 1.3x speedup regardless of
    ``max_workers`` — the workers serialize on the GIL — while a process
    executor scales with ``min(max_workers, cores)``.
    """
    if branches < 1 or depth < 1:
        raise ValueError("branches and depth must be at least 1")
    endpoint_spin = max(1, spin // 20)
    nodes: List[Node] = [
        Node.create(
            "source",
            CpuBoundOperator(spin=endpoint_spin, offset=1.0, cost=cost, tag="source"),
        )
    ]
    tails: List[str] = []
    for branch in range(branches):
        previous = "source"
        for level in range(depth):
            node_name = f"b{branch}_n{level}"
            nodes.append(
                Node.create(
                    node_name,
                    CpuBoundOperator(
                        spin=spin,
                        offset=float(branch + 1),
                        scale=1.0 + 0.1 * level,
                        cost=cost,
                        tag=node_name,
                        component=_COMPONENTS[branch % len(_COMPONENTS)],
                    ),
                    parents=[previous],
                )
            )
            previous = node_name
        tails.append(previous)
    nodes.append(
        Node.create(
            "sink",
            CpuBoundOperator(spin=endpoint_spin, offset=0.0, cost=cost, tag="sink"),
            parents=tails,
            is_output=True,
        )
    )
    return WorkflowDAG(nodes, name=name)


def make_random_dag(
    seed: int,
    max_width: int = 4,
    max_depth: int = 5,
    edge_probability: float = 0.5,
    node_seconds: float = 0.0,
    name: Optional[str] = None,
) -> WorkflowDAG:
    """A seeded random layered DAG for the equivalence suite.

    Layers have random widths in ``[1, max_width]``; every non-root node gets
    at least one parent in the previous layer plus random extra edges into
    earlier layers with ``edge_probability``.  Costs, offsets and components
    vary per node (driving different cost-model charges and component
    breakdowns); every sink is a declared output so output-driven slicing
    keeps the whole DAG and mandatory materialization paths are exercised.
    """
    rng = np.random.default_rng(seed)
    depth = int(rng.integers(2, max_depth + 1))
    layers: List[List[str]] = []
    nodes: List[Node] = []
    counter = 0
    for level in range(depth):
        width = int(rng.integers(1, max_width + 1))
        layer: List[str] = []
        for _ in range(width):
            node_name = f"n{counter}"
            counter += 1
            parents: List[str] = []
            if level > 0:
                previous_layer = layers[level - 1]
                anchor = previous_layer[int(rng.integers(0, len(previous_layer)))]
                parents.append(anchor)
                earlier = [
                    candidate
                    for earlier_layer in layers
                    for candidate in earlier_layer
                    if candidate != anchor
                ]
                for candidate in earlier:
                    if rng.random() < edge_probability:
                        parents.append(candidate)
            operator = LatencyOperator(
                offset=float(rng.integers(1, 6)),
                scale=float(rng.choice([0.5, 1.0, 2.0])),
                sleep_seconds=node_seconds,
                cost=float(np.round(rng.uniform(0.5, 4.0), 3)),
                tag=node_name,
                component=_COMPONENTS[int(rng.integers(0, len(_COMPONENTS)))],
            )
            nodes.append(Node.create(node_name, operator, parents=parents))
            layer.append(node_name)
        layers.append(layer)
    dag = WorkflowDAG(nodes, name=name or f"random-{seed}")
    return dag.relabel_outputs(dag.sinks())
