"""The Census workload: income classification from demographic attributes.

This is the paper's running example (Figure 3a) and its first evaluation
workflow: a single CSV-like data source, one-to-one input-to-example mapping,
fine-grained features and a supervised classification task, representative of
covariate analysis in the social sciences.

The real UCI Census Income dataset is replaced by a seeded synthetic
generator producing rows with the same schema (age, education, occupation,
marital status, capital gain, hours per week, sex, race) and a binary income
label correlated with those attributes, so the logistic-regression learner
has real signal to fit.  Records are emitted as raw CSV text lines so that
the workflow includes the costly parsing step whose reuse the paper
highlights.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..core.data import DataCollection
from ..core.operators import (
    Bucketizer,
    CSVScanner,
    DataSource,
    FieldExtractor,
    InteractionFeature,
    Learner,
    Reducer,
    RunContext,
)
from ..core.workflow import Workflow
from ..ml.linear import LogisticRegression
from ..ml.metrics import accuracy, confusion_matrix, f1_score, precision, recall
from ..ml.naive_bayes import MultinomialNaiveBayes
from .base import Workload, WorkloadCharacteristics, register
from .iterations import IterationSpec, IterationType

__all__ = ["CensusConfig", "CensusWorkload", "generate_census_rows", "CENSUS_COLUMNS"]

#: Column order of the synthetic census CSV.
CENSUS_COLUMNS: Tuple[str, ...] = (
    "age",
    "education",
    "occupation",
    "marital_status",
    "race",
    "sex",
    "capital_gain",
    "hours_per_week",
    "target",
)

_EDUCATIONS = ("HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate")
_OCCUPATIONS = ("Clerical", "Craft", "Exec-managerial", "Prof-specialty", "Sales", "Service")
_MARITAL = ("Married", "Never-married", "Divorced", "Widowed")
_RACES = ("White", "Black", "Asian", "Other")
_SEXES = ("Male", "Female")


def generate_census_rows(
    context: RunContext,
    n_train: int = 1200,
    n_test: int = 400,
    seed: int = 0,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Generate synthetic census rows as raw CSV ``line`` records.

    The income label follows a logistic model over education level,
    occupation, age, hours worked and capital gains, so downstream learners
    can achieve accuracy well above chance.
    """
    rng = np.random.default_rng(seed)

    def _rows(count: int) -> List[Dict[str, Any]]:
        rows = []
        for _ in range(count):
            age = int(np.clip(rng.normal(40, 12), 18, 85))
            education_index = int(rng.integers(len(_EDUCATIONS)))
            occupation_index = int(rng.integers(len(_OCCUPATIONS)))
            marital = _MARITAL[int(rng.integers(len(_MARITAL)))]
            race = _RACES[int(rng.integers(len(_RACES)))]
            sex = _SEXES[int(rng.integers(len(_SEXES)))]
            # Capital gain is reported in thousands so the numeric feature is on
            # the same scale as the indicator features (keeps GD well-conditioned).
            capital_gain = float(np.round(max(0.0, rng.exponential(0.9) - 0.4), 3))
            hours = int(np.clip(rng.normal(41, 10), 10, 80))
            logit = (
                -4.0
                + 0.9 * education_index
                + 0.35 * occupation_index
                + 0.04 * (age - 40)
                + 0.03 * (hours - 40)
                + 1.5 * capital_gain
                + (0.4 if marital == "Married" else 0.0)
            )
            probability = 1.0 / (1.0 + np.exp(-logit))
            target = int(rng.random() < probability)
            values = (
                age,
                _EDUCATIONS[education_index],
                _OCCUPATIONS[occupation_index],
                marital,
                race,
                sex,
                capital_gain,
                hours,
                target,
            )
            rows.append({"line": ",".join(str(v) for v in values)})
        return rows

    return _rows(int(n_train)), _rows(int(n_test))


@dataclass(frozen=True)
class CensusConfig:
    """Configuration of the census workflow at one iteration."""

    n_train: int = 1200
    n_test: int = 400
    data_seed: int = 0
    #: Extractor node names attached to ``rows`` (manual feature selection).
    #: Raw numeric ``ageExt`` is declared but not active by default — the
    #: discretized ``ageBucket`` stands in for it, as in the paper's example.
    active_extractors: Tuple[str, ...] = (
        "eduExt",
        "occExt",
        "ageBucket",
        "eduXocc",
        "clExt",
    )
    bucket_bins: int = 10
    model_type: str = "lr"
    reg_param: float = 0.1
    learning_rate: float = 0.5
    max_iter: int = 300
    nb_alpha: float = 1.0
    ppr_metric: str = "accuracy"

    def scaled(self, factor: float) -> "CensusConfig":
        """Scale the dataset size (the paper's Census 10x experiment)."""
        return replace(
            self,
            n_train=int(self.n_train * factor),
            n_test=int(self.n_test * factor),
        )


def _evaluate_predictions(collection: DataCollection, metric: str = "accuracy") -> Dict[str, float]:
    """PPR reducer UDF: compare predictions with labels on the given collection."""
    labels = [e.label for e in collection if e.label is not None and e.prediction is not None]
    predictions = [e.prediction for e in collection if e.label is not None and e.prediction is not None]
    result: Dict[str, float] = {"n": float(len(labels))}
    if not labels:
        return result
    if metric == "accuracy":
        result["accuracy"] = accuracy(labels, predictions)
    elif metric == "f1":
        result["f1"] = f1_score(labels, predictions)
        result["precision"] = precision(labels, predictions)
        result["recall"] = recall(labels, predictions)
    elif metric == "confusion":
        result.update({k: float(v) for k, v in confusion_matrix(labels, predictions).items()})
    else:
        result["accuracy"] = accuracy(labels, predictions)
    return result


class CensusWorkload(Workload):
    """Builder + iteration model for the census workflow."""

    name = "census"
    domain = "social_sciences"

    #: All extractors the program declares (including the unused ``raceExt``
    #: that output-driven pruning removes, as in Figure 3b).
    DECLARED_EXTRACTORS: Tuple[str, ...] = (
        "eduExt",
        "occExt",
        "ageExt",
        "msExt",
        "clExt",
        "sexExt",
        "hoursExt",
        "raceExt",
    )

    _FIELD_OF_EXTRACTOR: Mapping[str, str] = {
        "eduExt": "education",
        "occExt": "occupation",
        "ageExt": "age",
        "msExt": "marital_status",
        "clExt": "capital_gain",
        "sexExt": "sex",
        "hoursExt": "hours_per_week",
        "raceExt": "race",
    }

    def characteristics(self) -> WorkloadCharacteristics:
        return WorkloadCharacteristics(
            name="Census",
            domain=self.domain,
            application_domain="Social Sciences",
            num_data_sources="Single",
            input_to_example="One-to-One",
            feature_granularity="Fine Grained",
            learning_task="Supervised; Classification",
            supported_by_helix=True,
            supported_by_keystoneml=True,
            supported_by_deepdive=True,
        )

    def initial_config(self, scale: float = 1.0, seed: int = 0) -> CensusConfig:
        return CensusConfig(data_seed=seed).scaled(scale)

    # ------------------------------------------------------------------ iterations
    def apply_iteration(
        self, config: CensusConfig, spec: IterationSpec, rng: np.random.Generator
    ) -> CensusConfig:
        """One developer modification of the given type."""
        if spec.index == 0:
            return config
        if spec.kind == IterationType.DPR:
            action = int(rng.integers(3))
            if action == 0:
                # Add or remove the marital-status feature (the paper's msExt edit).
                active = set(config.active_extractors)
                if "msExt" in active:
                    active.discard("msExt")
                else:
                    active.add("msExt")
                return replace(config, active_extractors=tuple(sorted(active)))
            if action == 1:
                # Toggle the capital-gain feature.
                active = set(config.active_extractors)
                if "clExt" in active:
                    active.discard("clExt")
                else:
                    active.add("clExt")
                return replace(config, active_extractors=tuple(sorted(active)))
            # Change the age discretization granularity.
            new_bins = 8 if config.bucket_bins != 8 else 12
            return replace(config, bucket_bins=new_bins)
        if spec.kind == IterationType.LI:
            if int(rng.integers(2)) == 0 or config.model_type != "lr":
                new_model = "nb" if config.model_type == "lr" else "lr"
                return replace(config, model_type=new_model)
            return replace(config, reg_param=config.reg_param * float(rng.choice([0.5, 2.0])))
        # PPR: change the evaluation performed on the predictions.
        cycle = {"accuracy": "f1", "f1": "confusion", "confusion": "accuracy"}
        return replace(config, ppr_metric=cycle.get(config.ppr_metric, "accuracy"))

    # ------------------------------------------------------------------ building
    def _make_model_factory(self, config: CensusConfig):
        if config.model_type == "nb":
            return MultinomialNaiveBayes, {"alpha": config.nb_alpha}
        return (
            LogisticRegression,
            {
                "reg_param": config.reg_param,
                "learning_rate": config.learning_rate,
                "max_iter": config.max_iter,
            },
        )

    def build(self, config: CensusConfig) -> Workflow:
        wf = Workflow("census")
        wf.data_source(
            "data",
            DataSource(
                generator=generate_census_rows,
                params={
                    "n_train": config.n_train,
                    "n_test": config.n_test,
                    "seed": config.data_seed,
                },
            ),
        )
        wf.scan("rows", "data", CSVScanner(CENSUS_COLUMNS, line_field="line"))

        for extractor_name in self.DECLARED_EXTRACTORS:
            field_name = self._FIELD_OF_EXTRACTOR[extractor_name]
            wf.extractor(extractor_name, "rows", FieldExtractor(field_name), attach_to=None)
        wf.extractor("target", "rows", FieldExtractor("target", as_categorical=False))
        wf.extractor("ageBucket", "ageExt", Bucketizer("age", bins=config.bucket_bins))
        wf.extractor(
            "eduXocc", ["eduExt", "occExt"], InteractionFeature(["education", "occupation"])
        )

        active = [name for name in config.active_extractors if name in wf]
        wf.has_extractors("rows", active)
        wf.examples("income", "rows", extractors=active, label="target")

        factory, params = self._make_model_factory(config)
        wf.learner("predictions", "income", Learner(factory, params=params, name="incPred"))
        wf.reducer(
            "checked",
            "predictions",
            Reducer(
                _evaluate_predictions,
                on_test_only=True,
                name="checkResults",
                params={"metric": config.ppr_metric},
            ),
            uses=["target"],
        )
        wf.output("checked")
        return wf


register(CensusWorkload())
