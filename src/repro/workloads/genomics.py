"""The Genomics workload: gene-function discovery from scientific literature.

This reproduces Example 1 of the paper: split input articles into words,
identify gene mentions by joining with a genomic knowledge base, learn vector
representations for the genes (word2vec in the paper; a co-occurrence/SVD
embedding here), and cluster the gene vectors with k-means to find
functionally related genes.  The workflow has multiple data sources, a
one-to-many input-to-example mapping, no hand-engineered features, and two
*unsupervised* learning steps — the characteristics Table 2 reports.

The PubMed-scale corpus is replaced by a synthetic article generator that
plants co-mention structure: genes belonging to the same latent functional
group co-occur in sentences far more often than genes from different groups,
so the embedding + clustering pipeline can actually recover the groups (and
the PPR reducer can measure how well).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.data import DataCollection, ElementKind, Record, Split
from ..core.operators import Component, DataSource, Operator, Reducer, RunContext, Scanner
from ..core.workflow import Workflow
from ..ml.embeddings import CooccurrenceEmbedding, RandomProjectionEmbedding
from ..ml.kmeans import KMeans
from ..ml.metrics import cluster_sizes, silhouette_score
from ..ml.text import remove_stop_words, tokenize
from .base import Workload, WorkloadCharacteristics, register
from .iterations import IterationSpec, IterationType

__all__ = [
    "GenomicsConfig",
    "GenomicsWorkload",
    "generate_articles",
    "generate_gene_db",
    "GeneMentionJoin",
    "EmbeddingLearner",
    "GeneClusterLearner",
]

_FILLER_WORDS = (
    "study expression analysis pathway protein cell tissue results suggest role "
    "function signal response binding activity level increase decrease observed "
    "patients samples significant association network model data evidence"
).split()

_DISEASES = ("carcinoma", "diabetes", "alzheimers", "fibrosis", "anemia", "lymphoma")


def _gene_name(index: int) -> str:
    return f"gene{index:03d}"


def generate_gene_db(
    context: RunContext, n_genes: int = 30, seed: int = 0
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Generate the genomic knowledge base: one record per known gene symbol."""
    del context, seed  # deterministic by construction
    rows = [{"gene": _gene_name(i), "group": i % 5} for i in range(n_genes)]
    return rows, []


def generate_articles(
    context: RunContext,
    n_articles: int = 100,
    n_genes: int = 30,
    n_groups: int = 5,
    sentences_per_article: int = 5,
    seed: int = 0,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Generate synthetic articles whose sentences co-mention genes of one functional group."""
    del context
    rng = np.random.default_rng(seed)
    groups: List[List[str]] = [[] for _ in range(n_groups)]
    for index in range(n_genes):
        groups[index % n_groups].append(_gene_name(index))
    articles = []
    for doc_id in range(int(n_articles)):
        group = groups[int(rng.integers(n_groups))]
        sentences = []
        for _ in range(sentences_per_article):
            mentioned = list(rng.choice(group, size=min(2, len(group)), replace=False))
            filler = list(rng.choice(_FILLER_WORDS, size=6))
            disease = [_DISEASES[int(rng.integers(len(_DISEASES)))]]
            words = mentioned + filler + disease
            rng.shuffle(words)
            sentences.append(" ".join(words) + ".")
        articles.append({"doc_id": doc_id, "text": " ".join(sentences)})
    return articles, []


@dataclass(frozen=True)
class GenomicsConfig:
    """Configuration of the genomics workflow at one iteration."""

    n_articles: int = 100
    n_genes: int = 30
    n_groups: int = 5
    sentences_per_article: int = 5
    data_seed: int = 0
    corpus_scale: float = 1.0
    remove_stop_words: bool = True
    embedding_algorithm: str = "cooc"
    embedding_dims: int = 16
    window: int = 4
    n_clusters: int = 5
    ppr_metric: str = "sizes"

    def scaled(self, factor: float) -> "GenomicsConfig":
        return replace(self, n_articles=int(self.n_articles * factor))

    @property
    def effective_articles(self) -> int:
        return max(10, int(self.n_articles * self.corpus_scale))


# ---------------------------------------------------------------------------
# Workload-specific operators
# ---------------------------------------------------------------------------
class TokenizeScanner(Scanner):
    """Tokenize each article into a record carrying its token list."""

    def __init__(self, filter_stop_words: bool = True):
        self.filter_stop_words = filter_stop_words
        super().__init__(self._tokenize, name="tokenize")

    def config(self) -> Dict[str, Any]:
        return {"filter_stop_words": self.filter_stop_words}

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        return 3e-6 * (sum(input_sizes) + 1)

    def _tokenize(self, record: Record) -> Iterable[Record]:
        tokens = tokenize(str(record.get("text", "")))
        if self.filter_stop_words:
            tokens = remove_stop_words(tokens)
        return [record.with_fields(tokens=tuple(tokens))]


class GeneMentionJoin(Operator):
    """Join tokenized articles with the gene knowledge base.

    Produces one record per (article, mentioned gene) pair — the one-to-many
    input-to-example mapping of this workload.
    """

    component = Component.DPR

    def config(self) -> Dict[str, Any]:
        return {}

    def run(self, inputs: Sequence[Any], context: RunContext) -> DataCollection:
        token_docs, gene_db = inputs
        known = {str(record.get("gene")) for record in gene_db}
        mentions: List[Record] = []
        for record in token_docs:
            tokens = record.get("tokens", ())
            for gene in sorted(set(tokens) & known):
                mentions.append(record.with_fields(gene=gene))
        return DataCollection("gene_mentions", mentions, kind=ElementKind.RECORD)


class EmbeddingLearner(Operator):
    """Learn entity embeddings from the tokenized corpus (word2vec stand-in).

    Output is a dictionary with the fitted embedding model, the gene
    vocabulary observed in the mentions, and the per-gene vectors.
    """

    component = Component.LI

    def __init__(self, algorithm: str = "cooc", dimensions: int = 16, window: int = 4):
        if algorithm not in ("cooc", "randproj"):
            raise ValueError(f"unknown embedding algorithm: {algorithm!r}")
        self.algorithm = algorithm
        self.dimensions = dimensions
        self.window = window

    def config(self) -> Dict[str, Any]:
        return {"algorithm": self.algorithm, "dimensions": self.dimensions, "window": self.window}

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        return 5e-5 * (sum(input_sizes) + 1)

    def run(self, inputs: Sequence[Any], context: RunContext) -> Dict[str, Any]:
        token_docs, mentions = inputs
        documents = [list(record.get("tokens", ())) for record in token_docs]
        if self.algorithm == "cooc":
            model = CooccurrenceEmbedding(dimensions=self.dimensions, window=self.window)
        else:
            model = RandomProjectionEmbedding(dimensions=self.dimensions, window=self.window)
        model.set_seed(context.seed)
        model.fit(documents)
        genes = sorted({str(record.get("gene")) for record in mentions})
        vectors = {gene: model.vector(gene) for gene in genes}
        return {"model": model, "genes": genes, "vectors": vectors}

    @staticmethod
    def matrix(result: Mapping[str, Any]) -> Tuple[List[str], np.ndarray]:
        genes = list(result["genes"])
        if not genes:
            return genes, np.zeros((0, 1))
        return genes, np.vstack([result["vectors"][gene] for gene in genes])


class GeneClusterLearner(Operator):
    """Cluster gene embedding vectors with k-means."""

    component = Component.LI

    def __init__(self, n_clusters: int = 5):
        self.n_clusters = n_clusters

    def config(self) -> Dict[str, Any]:
        return {"n_clusters": self.n_clusters}

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        return 2e-5 * (sum(input_sizes) + 1)

    def run(self, inputs: Sequence[Any], context: RunContext) -> Dict[str, Any]:
        (embedding_result,) = inputs
        genes, matrix = EmbeddingLearner.matrix(embedding_result)
        model = KMeans(n_clusters=self.n_clusters, seed=context.seed)
        if len(genes) == 0:
            return {"model": model, "assignments": {}, "matrix": matrix, "genes": genes}
        model.fit(matrix)
        labels = model.predict(matrix)
        assignments = {gene: int(label) for gene, label in zip(genes, labels)}
        return {"model": model, "assignments": assignments, "matrix": matrix, "genes": genes}


def _cluster_report(collection: DataCollection, metric: str = "sizes") -> Dict[str, Any]:
    """PPR reducer: summarize the clustering (sizes, inertia or silhouette)."""
    if len(collection) == 0:
        return {"n_genes": 0}
    result = collection[0]
    assignments = result.get("assignments", {}) if isinstance(result, dict) else {}
    matrix = result.get("matrix") if isinstance(result, dict) else None
    report: Dict[str, Any] = {"n_genes": len(assignments)}
    labels = list(assignments.values())
    if metric == "sizes" or not labels:
        report["cluster_sizes"] = cluster_sizes(labels) if labels else {}
    elif metric == "silhouette" and matrix is not None:
        report["silhouette"] = silhouette_score(np.asarray(matrix), labels)
    elif metric == "inertia":
        model = result.get("model")
        report["inertia"] = float(getattr(model, "inertia_", 0.0))
    return report


class GenomicsWorkload(Workload):
    """Builder + iteration model for the genomics workflow."""

    name = "genomics"
    domain = "natural_sciences"

    def characteristics(self) -> WorkloadCharacteristics:
        return WorkloadCharacteristics(
            name="Genomics",
            domain=self.domain,
            application_domain="Natural Sciences",
            num_data_sources="Multiple",
            input_to_example="One-to-Many",
            feature_granularity="N/A",
            learning_task="Unsupervised",
            supported_by_helix=True,
            supported_by_keystoneml=True,
            supported_by_deepdive=False,
        )

    def initial_config(self, scale: float = 1.0, seed: int = 0) -> GenomicsConfig:
        return GenomicsConfig(data_seed=seed).scaled(scale)

    def apply_iteration(
        self, config: GenomicsConfig, spec: IterationSpec, rng: np.random.Generator
    ) -> GenomicsConfig:
        if spec.index == 0:
            return config
        if spec.kind == IterationType.DPR:
            action = int(rng.integers(3))
            if action == 0:
                # Expand or shrink the literature corpus (Example 1, change (i)).
                new_scale = 1.25 if config.corpus_scale <= 1.0 else 0.8
                return replace(config, corpus_scale=new_scale)
            if action == 1:
                # Change tokenization (Example 1, change (iii)).
                return replace(config, remove_stop_words=not config.remove_stop_words)
            return replace(config, window=3 if config.window != 3 else 5)
        if spec.kind == IterationType.LI:
            if int(rng.integers(2)) == 0:
                # Change the embedding algorithm (word2vec -> LINE, change (iv)).
                new_algorithm = "randproj" if config.embedding_algorithm == "cooc" else "cooc"
                return replace(config, embedding_algorithm=new_algorithm)
            # Tweak the number of clusters (change (v)).
            return replace(config, n_clusters=4 if config.n_clusters != 4 else 6)
        cycle = {"sizes": "silhouette", "silhouette": "inertia", "inertia": "sizes"}
        return replace(config, ppr_metric=cycle.get(config.ppr_metric, "sizes"))

    def build(self, config: GenomicsConfig) -> Workflow:
        wf = Workflow("genomics")
        wf.data_source(
            "articles",
            DataSource(
                generator=generate_articles,
                params={
                    "n_articles": config.effective_articles,
                    "n_genes": config.n_genes,
                    "n_groups": config.n_groups,
                    "sentences_per_article": config.sentences_per_article,
                    "seed": config.data_seed,
                },
            ),
        )
        wf.data_source(
            "gene_db",
            DataSource(generator=generate_gene_db, params={"n_genes": config.n_genes}),
        )
        wf.scan("tokens", "articles", TokenizeScanner(filter_stop_words=config.remove_stop_words))
        wf.node("gene_mentions", GeneMentionJoin(), parents=["tokens", "gene_db"])
        wf.node(
            "embeddings",
            EmbeddingLearner(
                algorithm=config.embedding_algorithm,
                dimensions=config.embedding_dims,
                window=config.window,
            ),
            parents=["tokens", "gene_mentions"],
            component=Component.LI,
        )
        wf.node(
            "clusters",
            GeneClusterLearner(n_clusters=config.n_clusters),
            parents=["embeddings"],
            component=Component.LI,
        )
        wf.reducer(
            "cluster_report",
            "clusters",
            Reducer(
                _cluster_report,
                on_test_only=False,
                name="clusterReport",
                params={"metric": config.ppr_metric},
            ),
        )
        wf.output("cluster_report")
        return wf


register(GenomicsWorkload())
