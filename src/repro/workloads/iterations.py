"""Iteration-type sampling: simulating how developers iterate per domain.

The paper drives its experiments with iteration-type frequencies collected
from a survey of over 100 applied-ML papers [78]: at every iteration a
modification type is drawn from {DPR, L/I, PPR} according to the domain's
observed frequencies, and a random operator of that type is modified.  The
survey itself is not reproducible, so this module hard-codes per-domain
frequencies consistent with the paper's qualitative description:

* social sciences (Census): PPR-dominated — "users conduct extensive
  fine-grained analysis of results";
* natural sciences (Genomics): a mix of all three with more L/I and PPR;
* NLP (IE): DPR only ("the NLP workflow has only DPR iterations");
* computer vision (MNIST): DPR and L/I dominated.

:func:`build_iteration_plan` deterministically samples a plan from a seed so
every system sees the exact same sequence of modifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "IterationType",
    "IterationSpec",
    "DOMAIN_FREQUENCIES",
    "DEFAULT_ITERATIONS",
    "build_iteration_plan",
]


class IterationType:
    """String constants for the three modification types."""

    DPR = "DPR"
    LI = "L/I"
    PPR = "PPR"

    ALL: Tuple[str, ...] = (DPR, LI, PPR)


@dataclass(frozen=True)
class IterationSpec:
    """One planned iteration: its index, modification type and a description."""

    index: int
    kind: str
    description: str = ""


#: Per-domain iteration-type frequencies (DPR, L/I, PPR), normalized.
DOMAIN_FREQUENCIES: Dict[str, Dict[str, float]] = {
    "social_sciences": {IterationType.DPR: 0.25, IterationType.LI: 0.15, IterationType.PPR: 0.60},
    "natural_sciences": {IterationType.DPR: 0.30, IterationType.LI: 0.30, IterationType.PPR: 0.40},
    "nlp": {IterationType.DPR: 1.00, IterationType.LI: 0.00, IterationType.PPR: 0.00},
    "computer_vision": {IterationType.DPR: 0.40, IterationType.LI: 0.40, IterationType.PPR: 0.20},
}

#: Number of iterations run per workflow in the paper's experiments
#: (10 everywhere except the NLP workflow, which has 6).
DEFAULT_ITERATIONS: Dict[str, int] = {
    "social_sciences": 10,
    "natural_sciences": 10,
    "nlp": 6,
    "computer_vision": 10,
}


def build_iteration_plan(
    domain: str,
    n_iterations: int = 0,
    seed: int = 7,
) -> List[IterationSpec]:
    """Sample a deterministic iteration plan for a domain.

    Iteration 0 is always the initial full run (kind ``DPR`` by convention —
    everything is new); subsequent iterations draw their type from the
    domain's frequency distribution.  ``n_iterations`` counts iterations
    *after* iteration 0; when 0, the paper's default count for the domain is
    used.
    """
    if domain not in DOMAIN_FREQUENCIES:
        raise KeyError(f"unknown domain {domain!r}; expected one of {sorted(DOMAIN_FREQUENCIES)}")
    frequencies = DOMAIN_FREQUENCIES[domain]
    total = n_iterations if n_iterations > 0 else DEFAULT_ITERATIONS[domain]
    rng = np.random.default_rng(seed)
    kinds = list(IterationType.ALL)
    probabilities = np.array([frequencies[kind] for kind in kinds], dtype=float)
    probabilities = probabilities / probabilities.sum()
    plan = [IterationSpec(index=0, kind=IterationType.DPR, description="initial run")]
    for index in range(1, total):
        kind = kinds[int(rng.choice(len(kinds), p=probabilities))]
        plan.append(IterationSpec(index=index, kind=kind, description=f"{kind} modification"))
    return plan
