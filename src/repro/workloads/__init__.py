"""Evaluation workloads: Census, Genomics, IE (NLP) and MNIST."""

from .base import WORKLOADS, Workload, WorkloadCharacteristics, get_workload, register
from .census import CensusConfig, CensusWorkload, generate_census_rows
from .genomics import GenomicsConfig, GenomicsWorkload, generate_articles, generate_gene_db
from .iterations import (
    DEFAULT_ITERATIONS,
    DOMAIN_FREQUENCIES,
    IterationSpec,
    IterationType,
    build_iteration_plan,
)
from .mnist import MnistConfig, MnistWorkload, generate_digit_images
from .nlp_ie import IEConfig, IEWorkload, generate_news_articles, generate_spouse_kb
from .synthetic import LatencyOperator, make_random_dag, make_wide_dag

__all__ = [
    "WORKLOADS",
    "Workload",
    "WorkloadCharacteristics",
    "get_workload",
    "register",
    "CensusConfig",
    "CensusWorkload",
    "generate_census_rows",
    "GenomicsConfig",
    "GenomicsWorkload",
    "generate_articles",
    "generate_gene_db",
    "DEFAULT_ITERATIONS",
    "DOMAIN_FREQUENCIES",
    "IterationSpec",
    "IterationType",
    "build_iteration_plan",
    "MnistConfig",
    "MnistWorkload",
    "generate_digit_images",
    "IEConfig",
    "IEWorkload",
    "generate_news_articles",
    "generate_spouse_kb",
    "LatencyOperator",
    "make_random_dag",
    "make_wide_dag",
]
