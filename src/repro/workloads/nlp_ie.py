"""The Information Extraction (IE) workload: spouse-pair extraction from news text.

Reproduces the paper's third evaluation workflow (from the DeepDive spouse
example): identify mentions of spouse pairs in news articles using a
knowledge base of known pairs for distant supervision.  The workflow joins
multiple data sources, maps each input article onto zero or more candidate
pairs (one-to-many), uses complex fine-grained features including
part-of-speech tags, and trains a structured-prediction-style classifier over
candidate pairs.

The expensive first step — NLP parsing of every article (sentence splitting,
tokenization, POS tagging) — is the operator whose cross-iteration reuse
drives the large gap between Helix and DeepDive in Figure 5(c): its result is
reusable in every subsequent iteration of this DPR-only workload.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.data import DataCollection, ElementKind, FeatureVector, Record, Split
from ..core.operators import (
    Component,
    DataSource,
    FieldExtractor,
    FunctionExtractor,
    Learner,
    Operator,
    Reducer,
    RunContext,
    Scanner,
)
from ..core.workflow import Workflow
from ..ml.linear import LogisticRegression
from ..ml.metrics import accuracy, f1_score, precision, recall
from ..ml.preprocessing import HashingVectorizer
from ..ml.text import pos_tag, split_sentences, tokenize
from .base import Workload, WorkloadCharacteristics, register
from .iterations import IterationSpec, IterationType

__all__ = [
    "IEConfig",
    "IEWorkload",
    "generate_news_articles",
    "generate_spouse_kb",
    "SentenceParser",
    "CandidateScanner",
    "KBLabeler",
]

_FIRST_NAMES = (
    "Alice", "Bruno", "Carla", "Derek", "Elena", "Felix", "Grace", "Hugo",
    "Irene", "Jonas", "Karen", "Luis", "Marta", "Nils", "Olga", "Pavel",
    "Quinn", "Rosa", "Stefan", "Tina",
)
_LAST_NAMES = (
    "Anders", "Brooks", "Castro", "Dvorak", "Evans", "Fischer", "Garcia",
    "Hoffman", "Ivanov", "Jensen", "Keller", "Lindqvist", "Moreau", "Novak",
    "Olsen", "Petrov", "Quintana", "Ritter", "Schmidt", "Tanaka",
)
_SPOUSE_TEMPLATES = (
    "{a} married {b} in a small ceremony last spring.",
    "{a} and spouse {b} attended the gala together.",
    "The couple {a} and {b} celebrated their anniversary.",
)
_OTHER_TEMPLATES = (
    "{a} met {b} at the annual conference to discuss policy.",
    "{a} criticized the proposal presented by {b} on Monday.",
    "{a} and {b} co-founded a company focused on logistics.",
    "The committee led by {a} interviewed {b} about the report.",
)
_FILLER_SENTENCES = (
    "The markets closed slightly higher after a volatile session.",
    "Officials announced new infrastructure spending for the region.",
    "The weather service issued a warning for heavy rain this weekend.",
)


def _person_pool(n_persons: int) -> List[str]:
    pool = []
    for i in range(n_persons):
        first = _FIRST_NAMES[i % len(_FIRST_NAMES)]
        last = _LAST_NAMES[(i // len(_FIRST_NAMES) + i) % len(_LAST_NAMES)]
        pool.append(f"{first} {last}")
    return pool


def generate_spouse_kb(
    context: RunContext, n_persons: int = 40, n_pairs: int = 25, seed: int = 0
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Generate the knowledge base of known spouse pairs."""
    del context
    rng = np.random.default_rng(seed)
    pool = _person_pool(n_persons)
    pairs = set()
    while len(pairs) < min(n_pairs, n_persons // 2):
        a, b = rng.choice(len(pool), size=2, replace=False)
        pairs.add(tuple(sorted((pool[int(a)], pool[int(b)]))))
    rows = [{"person_a": a, "person_b": b} for a, b in sorted(pairs)]
    return rows, []


def generate_news_articles(
    context: RunContext,
    n_articles: int = 150,
    n_persons: int = 40,
    n_pairs: int = 25,
    sentences_per_article: int = 4,
    seed: int = 0,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Generate synthetic news articles, some mentioning known spouse pairs."""
    del context
    rng = np.random.default_rng(seed)
    pool = _person_pool(n_persons)
    kb_rows, _ = generate_spouse_kb(RunContext(), n_persons=n_persons, n_pairs=n_pairs, seed=seed)
    kb_pairs = [(row["person_a"], row["person_b"]) for row in kb_rows]

    def _article(doc_id: int) -> Dict[str, Any]:
        sentences: List[str] = []
        for _ in range(sentences_per_article):
            roll = rng.random()
            if roll < 0.35 and kb_pairs:
                a, b = kb_pairs[int(rng.integers(len(kb_pairs)))]
                template = _SPOUSE_TEMPLATES[int(rng.integers(len(_SPOUSE_TEMPLATES)))]
                sentences.append(template.format(a=a, b=b))
            elif roll < 0.75:
                a, b = rng.choice(len(pool), size=2, replace=False)
                template = _OTHER_TEMPLATES[int(rng.integers(len(_OTHER_TEMPLATES)))]
                sentences.append(template.format(a=pool[int(a)], b=pool[int(b)]))
            else:
                sentences.append(_FILLER_SENTENCES[int(rng.integers(len(_FILLER_SENTENCES)))])
        return {"doc_id": doc_id, "text": " ".join(sentences)}

    n_total = int(n_articles)
    n_test = max(1, n_total // 4)
    articles = [_article(i) for i in range(n_total)]
    return articles[: n_total - n_test], articles[n_total - n_test :]


@dataclass(frozen=True)
class IEConfig:
    """Configuration of the IE workflow at one iteration."""

    n_articles: int = 160
    n_persons: int = 40
    n_pairs: int = 25
    sentences_per_article: int = 4
    data_seed: int = 0
    active_features: Tuple[str, ...] = ("betweenWords", "posPattern", "distance")
    hashing_dims: int = 64
    max_between_tokens: int = 12
    reg_param: float = 0.1
    max_iter: int = 150
    ppr_metric: str = "f1"

    def scaled(self, factor: float) -> "IEConfig":
        return replace(self, n_articles=int(self.n_articles * factor))


# ---------------------------------------------------------------------------
# Workload-specific operators
# ---------------------------------------------------------------------------
class SentenceParser(Scanner):
    """The expensive NLP parsing step: sentence splitting + tokenization + POS tags.

    One input article produces one record per sentence, carrying its tokens
    and tags; this output is what Helix materializes once and reuses in every
    subsequent iteration of the (DPR-only) IE workload.
    """

    def __init__(self):
        super().__init__(self._parse, name="sentence_parser")

    def config(self) -> Dict[str, Any]:
        return {}

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        return 1e-5 * (sum(input_sizes) + 1)

    def _parse(self, record: Record) -> Iterable[Record]:
        produced = []
        for position, sentence in enumerate(split_sentences(str(record.get("text", "")))):
            tokens = tokenize(sentence, lowercase=False)
            tags = pos_tag(tokens)
            produced.append(
                record.with_fields(
                    sentence=sentence,
                    sentence_index=position,
                    tokens=tuple(tokens),
                    pos_tags=tuple(tag for _token, tag in tags),
                )
            )
        return produced


class CandidateScanner(Scanner):
    """Generate person-pair candidates from parsed sentences.

    Person mentions are maximal runs of capitalized tokens (NNP); every
    ordered pair of distinct mentions within a sentence becomes a candidate
    with the tokens between them attached for feature extraction.
    """

    def __init__(self, max_between_tokens: int = 12):
        self.max_between_tokens = max_between_tokens
        super().__init__(self._candidates, name="candidate_scanner")

    def config(self) -> Dict[str, Any]:
        return {"max_between_tokens": self.max_between_tokens}

    @staticmethod
    def _person_mentions(tokens: Sequence[str], tags: Sequence[str]) -> List[Tuple[int, int, str]]:
        mentions = []
        i = 0
        while i < len(tokens):
            if tags[i] == "NNP":
                j = i
                while j + 1 < len(tokens) and tags[j + 1] == "NNP":
                    j += 1
                mentions.append((i, j, " ".join(tokens[i : j + 1])))
                i = j + 1
            else:
                i += 1
        return mentions

    def _candidates(self, record: Record) -> Iterable[Record]:
        tokens = list(record.get("tokens", ()))
        tags = list(record.get("pos_tags", ()))
        mentions = self._person_mentions(tokens, tags)
        produced = []
        for a_index in range(len(mentions)):
            for b_index in range(a_index + 1, len(mentions)):
                a_start, a_end, a_text = mentions[a_index]
                b_start, b_end, b_text = mentions[b_index]
                gap = b_start - a_end - 1
                if gap < 0 or gap > self.max_between_tokens:
                    continue
                between = tokens[a_end + 1 : b_start]
                between_tags = tags[a_end + 1 : b_start]
                produced.append(
                    record.with_fields(
                        person_a=a_text,
                        person_b=b_text,
                        between_tokens=tuple(between),
                        between_tags=tuple(between_tags),
                        token_distance=gap,
                    )
                )
        return produced


class KBLabeler(Operator):
    """Distant supervision: label candidates by joining with the spouse KB."""

    component = Component.DPR

    def config(self) -> Dict[str, Any]:
        return {}

    def run(self, inputs: Sequence[Any], context: RunContext) -> DataCollection:
        candidates, kb = inputs
        known = {
            tuple(sorted((str(row.get("person_a")), str(row.get("person_b")))))
            for row in kb
        }
        labeled = []
        for record in candidates:
            pair = tuple(sorted((str(record.get("person_a")), str(record.get("person_b")))))
            labeled.append(record.with_fields(label=int(pair in known)))
        return DataCollection("labeled_candidates", labeled, kind=ElementKind.RECORD)


class BetweenWordsExtractor:
    """Bag-of-words-between-mentions feature extractor UDF.

    A module-level callable class rather than a closure factory so the IE
    operators are picklable and the workflow can run on the process executor.
    Its signature token is the class path, the ``__call__`` bytecode and its
    scalar state (the hashing dimensionality), so editing the extraction
    logic or changing the dimensionality both invalidate reuse — only scalar
    state is kept on the instance, because non-scalar attributes would make
    the signature instance-unique and forfeit reuse.
    """

    def __init__(self, hashing_dims: int):
        self.hashing_dims = int(hashing_dims)

    def __call__(self, record: Record) -> FeatureVector:
        vectorizer = HashingVectorizer(n_features=self.hashing_dims, seed=13)
        tokens = [t.lower() for t in record.get("between_tokens", ())]
        dense = vectorizer.transform_one(tokens)
        return FeatureVector(
            {f"bw_{i}": float(v) for i, v in enumerate(dense) if v != 0.0}
        )


def _pos_pattern_extractor(record: Record) -> FeatureVector:
    """Indicator for the POS-tag pattern between the two person mentions."""
    pattern = "-".join(record.get("between_tags", ())[:6]) or "EMPTY"
    return FeatureVector.one_hot("pos_pattern", pattern)


def _distance_extractor(record: Record) -> FeatureVector:
    """Numeric token-distance feature between the two mentions."""
    return FeatureVector.scalar("token_distance", float(record.get("token_distance", 0)))


def _verb_extractor(record: Record) -> FeatureVector:
    """Indicator for whether a verb appears between the mentions."""
    has_verb = any(tag == "VB" for tag in record.get("between_tags", ()))
    return FeatureVector.scalar("has_verb_between", 1.0 if has_verb else 0.0)


def _evaluate_ie(collection: DataCollection, metric: str = "f1") -> Dict[str, float]:
    """PPR reducer: precision/recall/F1 (or accuracy) on the test candidates."""
    labels = [e.label for e in collection if e.label is not None and e.prediction is not None]
    predictions = [e.prediction for e in collection if e.label is not None and e.prediction is not None]
    report: Dict[str, float] = {"n": float(len(labels))}
    if not labels:
        return report
    if metric == "accuracy":
        report["accuracy"] = accuracy(labels, predictions)
    else:
        report["precision"] = precision(labels, predictions)
        report["recall"] = recall(labels, predictions)
        report["f1"] = f1_score(labels, predictions)
    return report


class IEWorkload(Workload):
    """Builder + iteration model for the information-extraction workflow."""

    name = "nlp"
    domain = "nlp"

    def characteristics(self) -> WorkloadCharacteristics:
        return WorkloadCharacteristics(
            name="IE",
            domain=self.domain,
            application_domain="NLP",
            num_data_sources="Multiple",
            input_to_example="One-to-Many",
            feature_granularity="Fine Grained",
            learning_task="Structured Prediction",
            supported_by_helix=True,
            supported_by_keystoneml=False,
            supported_by_deepdive=True,
        )

    def initial_config(self, scale: float = 1.0, seed: int = 0) -> IEConfig:
        return IEConfig(data_seed=seed).scaled(scale)

    def apply_iteration(
        self, config: IEConfig, spec: IterationSpec, rng: np.random.Generator
    ) -> IEConfig:
        if spec.index == 0:
            return config
        # The NLP workload has only DPR iterations (paper, Section 6.3).
        action = int(rng.integers(4))
        if action == 0:
            active = set(config.active_features)
            if "hasVerb" in active:
                active.discard("hasVerb")
            else:
                active.add("hasVerb")
            return replace(config, active_features=tuple(sorted(active)))
        if action == 1:
            active = set(config.active_features)
            if "posPattern" in active and len(active) > 2:
                active.discard("posPattern")
            else:
                active.add("posPattern")
            return replace(config, active_features=tuple(sorted(active)))
        if action == 2:
            return replace(config, hashing_dims=48 if config.hashing_dims != 48 else 96)
        return replace(config, max_between_tokens=8 if config.max_between_tokens != 8 else 16)

    def build(self, config: IEConfig) -> Workflow:
        wf = Workflow("nlp_ie")
        wf.data_source(
            "articles",
            DataSource(
                generator=generate_news_articles,
                params={
                    "n_articles": config.n_articles,
                    "n_persons": config.n_persons,
                    "n_pairs": config.n_pairs,
                    "sentences_per_article": config.sentences_per_article,
                    "seed": config.data_seed,
                },
            ),
        )
        wf.data_source(
            "spouse_kb",
            DataSource(
                generator=generate_spouse_kb,
                params={
                    "n_persons": config.n_persons,
                    "n_pairs": config.n_pairs,
                    "seed": config.data_seed,
                },
            ),
        )
        wf.scan("sentences", "articles", SentenceParser())
        wf.scan("candidates", "sentences", CandidateScanner(config.max_between_tokens))
        wf.node("labeled", KBLabeler(), parents=["candidates", "spouse_kb"])

        feature_nodes: Dict[str, FunctionExtractor] = {
            "betweenWords": FunctionExtractor(
                "betweenWords", BetweenWordsExtractor(config.hashing_dims)
            ),
            "posPattern": FunctionExtractor("posPattern", _pos_pattern_extractor),
            "distance": FunctionExtractor("distance", _distance_extractor),
            "hasVerb": FunctionExtractor("hasVerb", _verb_extractor),
        }
        for name, extractor in feature_nodes.items():
            wf.extractor(name, "labeled", extractor)
        wf.extractor("pairLabel", "labeled", FieldExtractor("label", as_categorical=False))

        active = [name for name in config.active_features if name in feature_nodes]
        wf.has_extractors("labeled", active)
        wf.examples("pairs", "labeled", extractors=active, label="pairLabel")
        wf.learner(
            "predictions",
            "pairs",
            Learner(
                LogisticRegression,
                params={"reg_param": config.reg_param, "max_iter": config.max_iter},
                name="spousePred",
            ),
        )
        wf.reducer(
            "extraction_quality",
            "predictions",
            Reducer(
                _evaluate_ie,
                on_test_only=True,
                name="checkExtraction",
                params={"metric": config.ppr_metric},
            ),
        )
        wf.output("extraction_quality")
        return wf


register(IEWorkload())
