"""The MNIST workload: handwritten-digit classification with random features.

Reproduces the paper's computer-vision workflow (from the KeystoneML
evaluation): images are featurized with a random Fourier-feature transform
(the "random FFT" pipeline) and classified with a linear model.  The workflow
characteristics from Table 2: a single data source, one-to-one mapping,
coarse-grained features, supervised classification.

What this workload stresses in the evaluation (Section 6.5.2, Figure 5d/6d):
its data preprocessing is cheap to compute but produces *large* intermediates,
so materializing the DPR outputs would cost more than it could ever save.
Helix OPT therefore materializes only the small L/I result, reuses it on
PPR-only iterations, and otherwise performs comparably to a system with no
reuse at all — it must not pay a large overhead when there is little reuse to
exploit.

Real MNIST images are replaced by a seeded generator that renders 8x8
prototype glyphs per digit class and perturbs them with noise; the binary
classification target is "digit >= 5".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.data import DataCollection, ElementKind, FeatureVector, Record, SemanticUnit, Split
from ..core.operators import (
    Component,
    DataSource,
    Extractor,
    FieldExtractor,
    Learner,
    Reducer,
    RunContext,
)
from ..core.workflow import Workflow
from ..ml.linear import LogisticRegression
from ..ml.metrics import accuracy, confusion_matrix, f1_score
from ..ml.preprocessing import RandomFourierFeatures
from .base import Workload, WorkloadCharacteristics, register
from .iterations import IterationSpec, IterationType

__all__ = ["MnistConfig", "MnistWorkload", "generate_digit_images", "RandomFourierExtractor"]

_IMAGE_SIZE = 8

# Eight-by-eight prototype strokes per digit (very coarse, but class-separable).
_PROTOTYPE_SEEDS = {digit: digit * 101 + 7 for digit in range(10)}


def _prototype(digit: int, size: int) -> np.ndarray:
    rng = np.random.default_rng(_PROTOTYPE_SEEDS[digit])
    base = rng.random((size, size))
    # Carve a digit-specific band structure so classes are distinguishable.
    canvas = np.zeros((size, size))
    row = digit % size
    col = (digit * 3) % size
    canvas[row, :] = 1.0
    canvas[:, col] = 1.0
    canvas[(row + digit) % size, (col + 1) % size] = 2.0
    return 0.6 * canvas + 0.4 * base


def generate_digit_images(
    context: RunContext,
    n_train: int = 600,
    n_test: int = 200,
    image_size: int = _IMAGE_SIZE,
    noise: float = 0.35,
    seed: int = 0,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Generate noisy prototype digit images with a binary >=5 target."""
    del context
    rng = np.random.default_rng(seed)
    prototypes = {digit: _prototype(digit, image_size) for digit in range(10)}

    def _rows(count: int) -> List[Dict[str, Any]]:
        rows = []
        for _ in range(count):
            digit = int(rng.integers(10))
            image = prototypes[digit] + noise * rng.standard_normal((image_size, image_size))
            rows.append(
                {
                    "pixels": image.astype(np.float32).ravel(),
                    "digit": digit,
                    "target": int(digit >= 5),
                }
            )
        return rows

    return _rows(int(n_train)), _rows(int(n_test))


@dataclass(frozen=True)
class MnistConfig:
    """Configuration of the MNIST workflow at one iteration."""

    n_train: int = 600
    n_test: int = 200
    image_size: int = _IMAGE_SIZE
    noise: float = 0.35
    data_seed: int = 0
    normalize: bool = True
    rff_components: int = 96
    rff_gamma: float = 1.0
    rff_seed: int = 1
    reg_param: float = 0.01
    max_iter: int = 400
    ppr_metric: str = "accuracy"

    def scaled(self, factor: float) -> "MnistConfig":
        return replace(self, n_train=int(self.n_train * factor), n_test=int(self.n_test * factor))


class RandomFourierExtractor(Extractor):
    """Random-Fourier featurization of the raw pixel vectors.

    Fast to compute (a single matrix multiply) but with a large output — the
    combination the paper's MNIST experiment uses to show that indiscriminate
    materialization is harmful.
    """

    def __init__(self, n_components: int = 96, gamma: float = 1.0, seed: int = 1,
                 normalize: bool = True):
        self.n_components = n_components
        self.gamma = gamma
        self.seed = seed
        self.normalize = normalize
        self.feature_name = "rff"

    def config(self) -> Dict[str, Any]:
        return {
            "n_components": self.n_components,
            "gamma": self.gamma,
            "seed": self.seed,
            "normalize": self.normalize,
        }

    def estimated_cost(self, input_sizes: Sequence[int]) -> float:
        return 2e-7 * (sum(input_sizes) + 1)

    def run(self, inputs: Sequence[Any], context: RunContext) -> DataCollection:
        (records,) = inputs
        pixel_rows = []
        splits = []
        for record in records:
            pixels = np.asarray(record.get("pixels"), dtype=float)
            if self.normalize:
                scale = np.linalg.norm(pixels) or 1.0
                pixels = pixels / scale
            pixel_rows.append(pixels)
            splits.append(record.split)
        if not pixel_rows:
            return DataCollection("rff", [], kind=ElementKind.SEMANTIC_UNIT)
        X = np.vstack(pixel_rows)
        transformer = RandomFourierFeatures(
            n_components=self.n_components, gamma=self.gamma, seed=self.seed
        )
        features = transformer.fit_transform(X)
        units = [
            SemanticUnit(
                input=None,
                source=self.feature_name,
                output=FeatureVector.from_dense(row, prefix="rff"),
                split=split,
            )
            for row, split in zip(features, splits)
        ]
        return DataCollection("rff", units, kind=ElementKind.SEMANTIC_UNIT)


def _evaluate_digits(collection: DataCollection, metric: str = "accuracy") -> Dict[str, float]:
    """PPR reducer: accuracy / F1 / confusion counts on the test images."""
    labels = [e.label for e in collection if e.label is not None and e.prediction is not None]
    predictions = [e.prediction for e in collection if e.label is not None and e.prediction is not None]
    report: Dict[str, float] = {"n": float(len(labels))}
    if not labels:
        return report
    if metric == "f1":
        report["f1"] = f1_score(labels, predictions)
    elif metric == "confusion":
        report.update({k: float(v) for k, v in confusion_matrix(labels, predictions).items()})
    else:
        report["accuracy"] = accuracy(labels, predictions)
    return report


class MnistWorkload(Workload):
    """Builder + iteration model for the MNIST workflow."""

    name = "mnist"
    domain = "computer_vision"

    def characteristics(self) -> WorkloadCharacteristics:
        return WorkloadCharacteristics(
            name="MNIST",
            domain=self.domain,
            application_domain="Computer Vision",
            num_data_sources="Single",
            input_to_example="One-to-One",
            feature_granularity="Coarse Grained",
            learning_task="Supervised; Classification",
            supported_by_helix=True,
            supported_by_keystoneml=True,
            supported_by_deepdive=False,
        )

    def initial_config(self, scale: float = 1.0, seed: int = 0) -> MnistConfig:
        return MnistConfig(data_seed=seed).scaled(scale)

    def apply_iteration(
        self, config: MnistConfig, spec: IterationSpec, rng: np.random.Generator
    ) -> MnistConfig:
        if spec.index == 0:
            return config
        if spec.kind == IterationType.DPR:
            action = int(rng.integers(3))
            if action == 0:
                # Re-draw the random featurization (the non-deterministic DPR step).
                return replace(config, rff_seed=config.rff_seed + 1)
            if action == 1:
                return replace(config, rff_components=48 if config.rff_components != 48 else 96)
            return replace(config, rff_gamma=config.rff_gamma * float(rng.choice([0.5, 2.0])))
        if spec.kind == IterationType.LI:
            return replace(config, reg_param=config.reg_param * float(rng.choice([0.5, 2.0])))
        cycle = {"accuracy": "f1", "f1": "confusion", "confusion": "accuracy"}
        return replace(config, ppr_metric=cycle.get(config.ppr_metric, "accuracy"))

    def build(self, config: MnistConfig) -> Workflow:
        wf = Workflow("mnist")
        wf.data_source(
            "images",
            DataSource(
                generator=generate_digit_images,
                params={
                    "n_train": config.n_train,
                    "n_test": config.n_test,
                    "image_size": config.image_size,
                    "noise": config.noise,
                    "seed": config.data_seed,
                },
            ),
        )
        wf.extractor(
            "rffFeatures",
            "images",
            RandomFourierExtractor(
                n_components=config.rff_components,
                gamma=config.rff_gamma,
                seed=config.rff_seed,
                normalize=config.normalize,
            ),
        )
        wf.extractor("target", "images", FieldExtractor("target", as_categorical=False))
        wf.has_extractors("images", ["rffFeatures"])
        wf.examples("digits", "images", extractors=["rffFeatures"], label="target")
        wf.learner(
            "predictions",
            "digits",
            Learner(
                LogisticRegression,
                params={"reg_param": config.reg_param, "max_iter": config.max_iter},
                name="digitPred",
            ),
        )
        wf.reducer(
            "digit_accuracy",
            "predictions",
            Reducer(
                _evaluate_digits,
                on_test_only=True,
                name="checkDigits",
                params={"metric": config.ppr_metric},
            ),
        )
        wf.output("digit_accuracy")
        return wf


register(MnistWorkload())
