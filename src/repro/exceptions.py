"""Exception hierarchy for the Helix reproduction library.

All library-specific errors derive from :class:`HelixError` so that callers can
catch a single base class.  More specific subclasses are raised by the DSL
(:class:`WorkflowSpecError`), the compiler/DAG layer (:class:`DAGError`,
:class:`CycleError`), the optimizer (:class:`OptimizationError`), the execution
engine (:class:`ExecutionError`, :class:`OperatorError`), the distributed
executor transport (:class:`ProtocolError`) and the materialization store
(:class:`StorageError`, :class:`BudgetExceededError`).
"""

from __future__ import annotations


class HelixError(Exception):
    """Base class for all errors raised by the library."""


class WorkflowSpecError(HelixError):
    """Raised when a workflow declaration is malformed.

    Examples: referencing an undeclared name, redeclaring a name with a
    different operator, declaring an output that does not exist.
    """


class DAGError(HelixError):
    """Raised when the compiled Workflow DAG is structurally invalid."""


class CycleError(DAGError):
    """Raised when the declared dependencies contain a cycle."""


class OptimizationError(HelixError):
    """Raised when an optimizer is given inconsistent inputs.

    For instance, a node that is both forced to be recomputed (original) and
    has no parents available, or negative cost estimates.
    """


class ExecutionError(HelixError):
    """Raised when the execution engine cannot carry out the physical plan."""


class ProtocolError(ExecutionError):
    """Raised when an executor transport frame violates the wire format.

    Covers a bad magic prefix, a protocol-version mismatch between
    coordinator and worker, an oversized frame, and a connection that closed
    mid-frame.  A clean close *between* frames is not an error (the reader
    reports end-of-stream instead).
    """


class OperatorError(ExecutionError):
    """Raised when a single operator fails while running.

    The original exception is preserved as ``__cause__`` and the failing node
    name is stored on :attr:`node_name`.  Instances pickle round-trip cleanly
    (``__reduce__``), so a failure inside a process-pool worker surfaces in
    the coordinating process as the same typed error (the cause chain and
    traceback do not cross the process boundary).
    """

    def __init__(self, node_name: str, message: str):
        super().__init__(f"operator '{node_name}' failed: {message}")
        self.node_name = node_name
        self.message = message

    def __reduce__(self):
        return (type(self), (self.node_name, self.message))


class StorageError(HelixError):
    """Raised when the materialization store cannot read or write an artifact."""


class ArtifactNotFoundError(StorageError):
    """Raised when a load is requested for an artifact that was never stored."""


class BudgetExceededError(StorageError):
    """Raised when a write would exceed the configured storage budget."""
