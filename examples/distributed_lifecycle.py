"""Run a Helix lifecycle across distributed TCP worker processes.

This example drives the census-income workload through a multi-iteration
lifecycle on the ``distributed`` executor: a coordinator dispatches each
iteration's COMPUTE tasks (pipelined, depth 2 per worker connection) to
long-lived worker processes over TCP sockets, while Helix's optimizer still
decides per iteration what to recompute, load or prune.  It then
demonstrates the executor's failure handling by killing one worker mid-run
and letting the coordinator requeue its tasks to the survivors.

Two modes::

    PYTHONPATH=src python examples/distributed_lifecycle.py            # local spawn
    PYTHONPATH=src python examples/distributed_lifecycle.py --remote   # address-configured

The default mode lets the coordinator spawn 4 workers itself.  ``--remote``
demonstrates the multi-host path end to end on loopback: it pre-starts two
``python -m repro.execution.worker`` processes (exactly what you would run
on other machines), waits for their readiness lines, and hands the
coordinator their ``host:port`` addresses via ``workers=[...]`` — the
workers then resolve store-resident inputs over the FETCH/ARTIFACT lane
instead of assuming the coordinator's filesystem.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

from repro.experiments import run_lifecycle
from repro.systems import HelixSystem

WORKERS = 4
ITERATIONS = 5
REMOTE_WORKERS = 2


def run_local() -> None:
    """Lifecycle on a locally-spawned worker pool, plus a mid-run worker kill."""
    # Name-configuring the distributed executor auto-pools it: the system
    # owns one coordinator + worker pool, reused by every iteration, and
    # the `with system:` block runs the final shutdown.
    with HelixSystem.opt(executor="distributed", max_workers=WORKERS, seed=0) as system:
        result = run_lifecycle(system, "census", n_iterations=ITERATIONS, seed=7)

        executor = system.owned_executor
        print(f"coordinator: {executor.address[0]}:{executor.address[1]}")
        print(f"workers    : {sorted(executor.worker_pids().values())}")
        print(f"\n== census lifecycle on {WORKERS} distributed workers ==")
        _print_iterations(result)

        # --- failure handling: kill one worker mid-run -------------------
        victim = next(iter(executor.worker_pids().values()))
        print(f"\n== rerunning the lifecycle while killing worker pid {victim} ==")
        killer = threading.Timer(0.05, lambda: os.kill(victim, signal.SIGKILL))
        killer.start()
        rerun = run_lifecycle(system, "census", n_iterations=2, seed=7)
        killer.join()
        pool = executor.worker_pids()
        assert victim not in pool.values()
        print(f"pool now   : {sorted(pool.values())}")
        print(f"(pid {victim}'s in-flight tasks were requeued to survivors; "
              f"the next iteration's start() respawned the missing worker)")
        print(f"rerun charged time: {rerun.total_time():.3f}s "
              f"(statistics identical to a healthy run)")


def run_remote() -> None:
    """Lifecycle on pre-started, address-configured workers (the multi-host path)."""
    src_dir = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src_dir), env.get("PYTHONPATH")) if p
    )
    processes = []
    addresses = []
    try:
        for index in range(REMOTE_WORKERS):
            # On a real deployment these commands run on other hosts; the
            # coordinator only needs their host:port addresses.
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.execution.worker",
                 "--port", "0", "--worker-id", f"remote-{index}"],
                stdout=subprocess.PIPE,
                text=True,
                env=env,
            )
            processes.append(process)
            line = process.stdout.readline().strip()
            match = re.match(r"worker \S+ listening on ([\d.]+):(\d+)", line)
            assert match, f"unexpected worker readiness line: {line!r}"
            addresses.append(f"{match.group(1)}:{match.group(2)}")
            print(line)

        with HelixSystem.opt(
            executor="distributed", workers=addresses, seed=0
        ) as system:
            result = run_lifecycle(system, "census", n_iterations=ITERATIONS, seed=7)
            executor = system.owned_executor
            print(f"\nworkers    : {sorted(executor.worker_pids())}  "
                  f"(address-configured; FETCH lane "
                  f"{'on' if executor.uses_artifact_refs else 'off'})")
            print(f"== census lifecycle on {len(addresses)} remote workers ==")
            _print_iterations(result)

            # --- failure handling: kill one remote worker mid-run --------
            victim = processes[0]
            print(f"\n== rerunning the lifecycle while killing remote worker "
                  f"{addresses[0]} (pid {victim.pid}) ==")
            killer = threading.Timer(0.05, victim.kill)
            killer.start()
            rerun = run_lifecycle(system, "census", n_iterations=2, seed=7)
            killer.join()
            pool = sorted(executor.worker_pids())
            assert addresses[0] not in pool
            print(f"pool now   : {pool}")
            print(f"(the dead worker's tasks were requeued to the survivor; "
                  f"an externally-restarted worker would be re-dialed on the "
                  f"next start)")
            print(f"rerun charged time: {rerun.total_time():.3f}s "
                  f"(statistics identical to a healthy run)")
    finally:
        for process in processes:
            if process.poll() is None:
                process.terminate()
                process.wait(timeout=5)


def _print_iterations(result) -> None:
    for stats, kind in zip(result.iterations, result.iteration_types()):
        print(
            f"iteration {stats.iteration} ({kind or 'initial':>8}): "
            f"{stats.total_time:7.3f}s charged, "
            f"{len(stats.node_times):2d} nodes executed, "
            f"{len(stats.materialized_nodes):2d} materialized"
        )
    print(f"cumulative charged time: {result.total_time():.3f}s")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--remote",
        action="store_true",
        help="pre-start python -m repro.execution.worker processes on "
        "loopback and configure the coordinator with their addresses "
        "(the multi-host path) instead of spawning workers locally",
    )
    args = parser.parse_args()
    if args.remote:
        run_remote()
    else:
        run_local()


if __name__ == "__main__":
    main()
