"""Run a Helix lifecycle across 4 local TCP worker processes.

This example drives the census-income workload through a multi-iteration
lifecycle on the ``distributed`` executor: a coordinator dispatches each
iteration's COMPUTE tasks to four long-lived worker processes over local
TCP sockets, while Helix's optimizer still decides per iteration what to
recompute, load or prune.  It then demonstrates the executor's failure
handling by killing one worker mid-run and letting the coordinator requeue
its tasks to the survivors.

Run with::

    PYTHONPATH=src python examples/distributed_lifecycle.py
"""

from __future__ import annotations

import os
import signal
import threading

from repro.experiments import run_lifecycle
from repro.systems import HelixSystem

WORKERS = 4
ITERATIONS = 5


def main() -> None:
    # Name-configuring the distributed executor auto-pools it: the system
    # owns one coordinator + worker pool, reused by every iteration, and
    # the `with system:` block runs the final shutdown.
    with HelixSystem.opt(executor="distributed", max_workers=WORKERS, seed=0) as system:
        result = run_lifecycle(system, "census", n_iterations=ITERATIONS, seed=7)

        executor = system.owned_executor
        print(f"coordinator: {executor.address[0]}:{executor.address[1]}")
        print(f"workers    : {sorted(executor.worker_pids().values())}")
        print(f"\n== census lifecycle on {WORKERS} distributed workers ==")
        for stats, kind in zip(result.iterations, result.iteration_types()):
            print(
                f"iteration {stats.iteration} ({kind or 'initial':>8}): "
                f"{stats.total_time:7.3f}s charged, "
                f"{len(stats.node_times):2d} nodes executed, "
                f"{len(stats.materialized_nodes):2d} materialized"
            )
        print(f"cumulative charged time: {result.total_time():.3f}s")

        # --- failure handling: kill one worker mid-run -------------------
        victim = next(iter(executor.worker_pids().values()))
        print(f"\n== rerunning the lifecycle while killing worker pid {victim} ==")
        killer = threading.Timer(0.05, lambda: os.kill(victim, signal.SIGKILL))
        killer.start()
        rerun = run_lifecycle(system, "census", n_iterations=2, seed=7)
        killer.join()
        pool = executor.worker_pids()
        assert victim not in pool.values()
        print(f"pool now   : {sorted(pool.values())}")
        print(f"(pid {victim}'s in-flight tasks were requeued to survivors; "
              f"the next iteration's start() respawned the missing worker)")
        print(f"rerun charged time: {rerun.total_time():.3f}s "
              f"(statistics identical to a healthy run)")


if __name__ == "__main__":
    main()
