"""Build a custom workflow from scratch with the DSL (no pre-packaged workload).

The scenario: product reviews arrive as raw text lines ``"<stars>\t<review>"``;
we want to predict whether a review is positive (>= 4 stars) from bag-of-words
and length features, and iterate on the feature set.  This shows how to use
the DSL directly — declaring a data source, a scanner, extractors (including a
UDF extractor), example assembly, a learner and a reducer — and how Helix
behaves when *you* change one line of the program.

Run with::

    python examples/custom_workflow.py
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core import (
    DataSource,
    FeatureVector,
    FieldExtractor,
    FunctionExtractor,
    Learner,
    Reducer,
    Scanner,
    Workflow,
)
from repro.ml import LogisticRegression, accuracy, tokenize
from repro.ml.preprocessing import HashingVectorizer
from repro.systems import HelixSystem

POSITIVE_PHRASES = ["great product", "works perfectly", "highly recommend", "love it", "excellent value"]
NEGATIVE_PHRASES = ["stopped working", "poor quality", "waste of money", "very disappointed", "broke after"]
NEUTRAL_FILLER = ["arrived on time", "standard packaging", "as described", "bought for my office"]


def generate_reviews(context, n_train: int = 800, n_test: int = 200, seed: int = 3):
    """Synthetic review lines: ``stars<TAB>text`` with sentiment-bearing phrases."""
    rng = np.random.default_rng(seed)

    def make(count: int) -> List[Dict[str, str]]:
        rows = []
        for _ in range(count):
            positive = rng.random() < 0.5
            phrases = POSITIVE_PHRASES if positive else NEGATIVE_PHRASES
            text = " ".join(
                [phrases[int(rng.integers(len(phrases)))]]
                + list(rng.choice(NEUTRAL_FILLER, size=2))
            )
            stars = int(rng.integers(4, 6)) if positive else int(rng.integers(1, 4))
            rows.append({"line": f"{stars}\t{text}"})
        return rows

    return make(n_train), make(n_test)


def parse_review(record):
    """Scanner UDF: split the raw line into stars / text / label fields."""
    stars_text = str(record.get("line", "")).split("\t", 1)
    if len(stars_text) != 2:
        return []
    stars, text = stars_text
    return [record.with_fields(stars=int(stars), text=text, label=int(int(stars) >= 4))]


def build_workflow(use_length_feature: bool, hashing_dims: int = 64) -> Workflow:
    """Declare the review-sentiment workflow; flags mirror developer edits."""
    wf = Workflow("reviews")
    wf.data_source("raw", DataSource(generator=generate_reviews))
    wf.scan("reviews", "raw", Scanner(parse_review, name="parse_review"))

    vectorizer = HashingVectorizer(n_features=hashing_dims, seed=11)

    def bag_of_words(record) -> FeatureVector:
        counts = vectorizer.transform_one(tokenize(str(record.get("text", ""))))
        return FeatureVector({f"bow_{i}": float(v) for i, v in enumerate(counts) if v})

    bag_of_words._version = hashing_dims

    def review_length(record) -> FeatureVector:
        return FeatureVector.scalar("length", float(len(tokenize(str(record.get("text", ""))))))

    wf.extractor("bow", "reviews", FunctionExtractor("bow", bag_of_words))
    wf.extractor("length", "reviews", FunctionExtractor("length", review_length))
    wf.extractor("label", "reviews", FieldExtractor("label", as_categorical=False))

    active = ["bow"] + (["length"] if use_length_feature else [])
    wf.has_extractors("reviews", active)
    wf.examples("examples", "reviews", extractors=active, label="label")
    wf.learner("sentiment", "examples", Learner(LogisticRegression, params={"reg_param": 0.01}))

    def check(collection) -> Dict[str, float]:
        labels = [e.label for e in collection if e.prediction is not None]
        predictions = [e.prediction for e in collection if e.prediction is not None]
        return {"accuracy": accuracy(labels, predictions), "n": float(len(labels))}

    wf.reducer("quality", "sentiment", Reducer(check, name="check"))
    wf.output("quality")
    return wf


def main() -> None:
    helix = HelixSystem.opt(seed=0)

    print("== iteration 0: bag-of-words only ==")
    stats = helix.run_iteration(build_workflow(use_length_feature=False), iteration=0)
    print("run time  ", round(stats.total_time, 3), "s   accuracy", stats.outputs["quality"])

    print("\n== iteration 1: identical program re-run (everything reused) ==")
    stats = helix.run_iteration(build_workflow(use_length_feature=False), iteration=1)
    print("run time  ", round(stats.total_time, 4), "s   state fractions", stats.state_fractions())

    print("\n== iteration 2: add a review-length feature (one DSL line changed) ==")
    stats = helix.run_iteration(build_workflow(use_length_feature=True), iteration=2)
    print("run time  ", round(stats.total_time, 3), "s   accuracy", stats.outputs["quality"])
    print("recomputed:", stats.nodes_in_state(__import__("repro.optimizer.oep", fromlist=["NodeState"]).NodeState.COMPUTE))
    print("the parsed reviews and unchanged extractors were loaded or pruned, not recomputed")


if __name__ == "__main__":
    main()
