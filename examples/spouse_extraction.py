"""Information extraction: spouse-pair mentions from news text (DeepDive's example).

This runs the IE workload — sentence parsing with POS tagging, person-pair
candidate generation, distant supervision against a knowledge base, feature
extraction and a logistic-regression extractor — and then compares Helix
against the DeepDive-style comparator over a few feature-engineering
iterations (the only kind of iteration this workload sees in the paper).

Run with::

    python examples/spouse_extraction.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.systems import DeepDiveSystem, HelixSystem
from repro.workloads import get_workload
from repro.workloads.nlp_ie import IEConfig


def main() -> None:
    workload = get_workload("nlp")
    helix = HelixSystem.opt(seed=0)
    deepdive = DeepDiveSystem(seed=0)

    configs = [IEConfig(n_articles=200)]
    # Three feature-engineering (DPR) iterations a developer might try.
    configs.append(replace(configs[-1], active_features=("betweenWords", "posPattern", "distance", "hasVerb")))
    configs.append(replace(configs[-1], hashing_dims=96))
    configs.append(replace(configs[-1], max_between_tokens=8))

    helix_total = 0.0
    deepdive_total = 0.0
    print(f"{'iteration':<42s} {'helix':>10s} {'deepdive':>10s}   extraction quality (helix)")
    labels = [
        "0: initial extractor",
        "1: add has-verb-between feature",
        "2: widen the hashing vocabulary",
        "3: tighten the candidate window",
    ]
    for index, (label, config) in enumerate(zip(labels, configs)):
        wf = workload.build(config)
        helix_stats = helix.run_iteration(wf, iteration=index, iteration_type="DPR")
        deepdive_stats = deepdive.run_iteration(workload.build(config), iteration=index, iteration_type="DPR")
        helix_total += helix_stats.total_time
        deepdive_total += deepdive_stats.total_time
        quality = helix_stats.outputs["extraction_quality"]
        print(
            f"{label:<42s} {helix_stats.total_time:9.3f}s {deepdive_stats.total_time:9.3f}s   "
            f"precision={quality.get('precision', 0):.2f} recall={quality.get('recall', 0):.2f} "
            f"f1={quality.get('f1', 0):.2f}"
        )

    print(
        f"\ncumulative: helix {helix_total:.2f}s vs deepdive {deepdive_total:.2f}s "
        f"({deepdive_total / max(helix_total, 1e-9):.1f}x) — the parsed corpus is reused by Helix, "
        "re-parsed and re-materialized every iteration by DeepDive"
    )


if __name__ == "__main__":
    main()
