"""Quickstart: build a small workflow, iterate on it, and watch Helix reuse work.

This example builds the paper's running census-income workflow (Figure 3a),
runs it once, then simulates three developer iterations — a postprocessing
change, a hyperparameter change and a feature-engineering change — and prints
what Helix decided to recompute, load or prune each time, along with the
per-iteration run time.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.optimizer.oep import NodeState
from repro.systems import HelixSystem, KeystoneMLSystem
from repro.workloads import IterationSpec, IterationType, get_workload
from repro.workloads.census import CensusConfig


def describe(stats) -> str:
    """One line summarizing an iteration's plan and cost."""
    computed = stats.nodes_in_state(NodeState.COMPUTE)
    loaded = stats.nodes_in_state(NodeState.LOAD)
    pruned = stats.nodes_in_state(NodeState.PRUNE)
    return (
        f"{stats.total_time:8.3f}s   computed={len(computed):2d} "
        f"loaded={len(loaded):2d} pruned={len(pruned):2d}   "
        f"recomputed nodes: {', '.join(computed) if len(computed) <= 6 else len(computed)}"
    )


def main() -> None:
    workload = get_workload("census")
    helix = HelixSystem.opt(seed=0)
    keystone = KeystoneMLSystem(seed=0)

    # Iteration 0: the initial version of the workflow.
    config = CensusConfig(n_train=1200, n_test=400)
    print("== iteration 0: initial run (everything is new) ==")
    stats = helix.run_iteration(workload.build(config), iteration=0)
    print("helix      ", describe(stats))
    print("accuracy   ", stats.outputs["checked"])

    # Three typical developer modifications, one per workflow component.
    modifications = [
        ("PPR: evaluate F1 instead of accuracy", IterationType.PPR),
        ("L/I: change the regularization strength", IterationType.LI),
        ("DPR: add the marital-status feature", IterationType.DPR),
    ]
    import numpy as np

    rng = np.random.default_rng(0)
    for index, (label, kind) in enumerate(modifications, start=1):
        config = workload.apply_iteration(config, IterationSpec(index=index, kind=kind), rng)
        wf = workload.build(config)
        print(f"\n== iteration {index}: {label} ==")
        helix_stats = helix.run_iteration(wf, iteration=index, iteration_type=kind)
        keystone_stats = keystone.run_iteration(wf, iteration=index, iteration_type=kind)
        print("helix      ", describe(helix_stats))
        print("keystoneml ", describe(keystone_stats))
        speedup = keystone_stats.total_time / max(helix_stats.total_time, 1e-9)
        print(f"helix is {speedup:.1f}x faster on this iteration")

    print(f"\nmaterialized intermediates on disk: {helix.storage_bytes() / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
