"""Gene-function discovery: the paper's motivating Example 1, end to end.

Articles are tokenized, gene mentions are identified by joining with a gene
knowledge base, entity embeddings are learned from the corpus and clustered
with k-means to surface functionally related genes.  The example then iterates
the way the bioinformics collaborators in the paper do — growing the corpus,
switching the embedding algorithm, and changing the cluster granularity — and
reports how much work Helix reused at each step.

Run with::

    python examples/genomics_embeddings.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.systems import HelixSystem
from repro.workloads import get_workload
from repro.workloads.genomics import GenomicsConfig


def report(label: str, stats) -> None:
    fractions = stats.state_fractions()
    print(
        f"{label:<48s} {stats.total_time:7.3f}s   "
        f"recomputed {fractions['Sc']:.0%} / loaded {fractions['Sl']:.0%} / pruned {fractions['Sp']:.0%}"
    )


def main() -> None:
    workload = get_workload("genomics")
    helix = HelixSystem.opt(seed=0)

    config = GenomicsConfig(n_articles=150, n_genes=30, n_groups=5, n_clusters=5)
    stats = helix.run_iteration(workload.build(config), iteration=0)
    report("iteration 0: initial pipeline", stats)
    print("   cluster report:", stats.outputs["cluster_report"])

    # (i) expand the literature corpus -> everything downstream of the corpus changes.
    config = replace(config, corpus_scale=1.3)
    stats = helix.run_iteration(workload.build(config), iteration=1)
    report("iteration 1: expand the corpus (DPR)", stats)

    # (iv) switch the embedding algorithm -> tokenization and mention join are reused.
    config = replace(config, embedding_algorithm="randproj")
    stats = helix.run_iteration(workload.build(config), iteration=2)
    report("iteration 2: switch embedding algorithm (L/I)", stats)

    # (v) tweak the number of clusters -> embeddings are reused, only k-means reruns.
    config = replace(config, n_clusters=8)
    stats = helix.run_iteration(workload.build(config), iteration=3)
    report("iteration 3: change cluster granularity (L/I)", stats)
    print("   cluster report:", stats.outputs["cluster_report"])

    # Change only the evaluation -> near-zero work.
    config = replace(config, ppr_metric="silhouette")
    stats = helix.run_iteration(workload.build(config), iteration=4)
    report("iteration 4: report silhouette instead (PPR)", stats)
    print("   cluster report:", stats.outputs["cluster_report"])

    print(f"\nmaterialized intermediates on disk: {helix.storage_bytes() / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
