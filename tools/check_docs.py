#!/usr/bin/env python
"""Link and anchor checker for the documentation tree.

Validates every relative markdown link in README.md and docs/*.md:

* the target file (or directory) exists, relative to the linking file;
* a ``#fragment`` resolves to a heading anchor in the target file, using
  GitHub's slug rules (lowercase, punctuation stripped, spaces to dashes,
  ``-N`` suffixes for duplicates);
* bare ``#fragment`` links resolve within the linking file itself.

External links (``http(s)://``, ``mailto:``) are not fetched.  Exits
non-zero listing every broken link, so doc rot fails CI (wired into
``.github/workflows/ci.yml`` and ``tests/test_docs.py``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files whose links are validated.
DOC_FILES = ["README.md", "ROADMAP.md", *sorted(p.relative_to(REPO_ROOT).as_posix() for p in (REPO_ROOT / "docs").glob("*.md"))]

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE = re.compile(r"^\s*(```|~~~)")


def _slugify(heading: str, seen: Dict[str, int]) -> str:
    """GitHub-style anchor slug for a heading, tracking duplicates."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # drop code-span backticks
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> link text
    slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def _anchors(path: Path) -> Set[str]:
    """Every heading anchor defined in a markdown file."""
    seen: Dict[str, int] = {}
    anchors: Set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(_slugify(match.group(2), seen))
    return anchors


def _links(path: Path) -> List[str]:
    """Every markdown link target in a file, code fences excluded."""
    targets: List[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        targets.extend(match.group(1) for match in _LINK.finditer(line))
    return targets


def check_docs(root: Path = REPO_ROOT) -> List[str]:
    """Return a list of human-readable problems (empty = docs are clean)."""
    problems: List[str] = []
    anchor_cache: Dict[Path, Set[str]] = {}
    for rel in DOC_FILES:
        doc = root / rel
        if not doc.is_file():
            problems.append(f"{rel}: documentation file is missing")
            continue
        for target in _links(doc):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            resolved = doc if not path_part else (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{rel}: broken link -> {target}")
                continue
            if fragment:
                if resolved.suffix.lower() != ".md":
                    problems.append(
                        f"{rel}: fragment link into non-markdown file -> {target}"
                    )
                    continue
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = _anchors(resolved)
                if fragment.lower() not in anchor_cache[resolved]:
                    problems.append(f"{rel}: missing anchor -> {target}")
    return problems


def main() -> int:
    problems = check_docs()
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    checked = ", ".join(DOC_FILES)
    print(f"OK: links and anchors valid in {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
