#!/usr/bin/env python
"""Snapshot benchmark ``--json`` output into tracked ``BENCH_*.json`` files.

The benchmark scripts under ``benchmarks/`` can dump their measurements as
JSON (``--json PATH``); this tool runs a named benchmark configuration and
records that dump — plus the interpreter/platform it was measured on — as a
``BENCH_<name>.json`` file at the repository root, intended to be committed.
Tracked snapshots give reviewers a known-good reference measurement next to
the code that produced it, and give CI a file to diff structure against.

Usage::

    python tools/record_bench.py --list
    python tools/record_bench.py fig7_distributed
    python tools/record_bench.py all            # every registered snapshot

Absolute timings in a snapshot are machine-specific — the stable parts are
the structure, the speedup ratios and the pass/fail ``failures`` list (a
recorded snapshot must have recorded ``failures: []``; the tool refuses to
write one that failed its own bars).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Registered snapshot configurations: name -> (script, extra argv).
#: Each records to ``BENCH_<name>.json`` at the repository root.  Smoke
#: variants are deliberate — tracked snapshots must be cheap to refresh.
SNAPSHOTS: Dict[str, Dict[str, List[str]]] = {
    "fig7_distributed": {
        "script": ["benchmarks/bench_fig7_scalability.py"],
        "args": ["--smoke", "--executor", "distributed"],
    },
    "serialization_micro": {
        "script": ["benchmarks/bench_serialization_micro.py"],
        "args": ["--smoke"],
    },
}


def record(name: str, output: Optional[Path] = None) -> Path:
    """Run one registered benchmark and write its tracked snapshot.

    Returns the snapshot path.  Raises ``RuntimeError`` if the benchmark
    exits non-zero or reports bar failures — a failing measurement must
    not become the committed reference.
    """
    config = SNAPSHOTS[name]
    destination = output or (REPO_ROOT / f"BENCH_{name}.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH")])
    )
    with tempfile.TemporaryDirectory(prefix="record-bench-") as tmp:
        dump = Path(tmp) / "bench.json"
        command = [
            sys.executable,
            *config["script"],
            *config["args"],
            "--json",
            str(dump),
        ]
        print(f"[{name}] running: {' '.join(command[1:])}", flush=True)
        proc = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise RuntimeError(f"{name}: benchmark exited {proc.returncode}")
        measurements = json.loads(dump.read_text(encoding="utf-8"))
    if measurements.get("failures"):
        raise RuntimeError(
            f"{name}: refusing to snapshot a failing run: {measurements['failures']}"
        )
    snapshot = {
        "benchmark": name,
        "command": [*config["script"], *config["args"]],
        "python": platform.python_version(),
        "platform": platform.platform(),
        "measurements": measurements,
    }
    destination.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"[{name}] wrote {destination.relative_to(REPO_ROOT)}", flush=True)
    return destination


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record benchmark --json output as tracked BENCH_*.json snapshots."
    )
    parser.add_argument(
        "name",
        nargs="?",
        default=None,
        help=f"snapshot to record: {', '.join(sorted(SNAPSHOTS))}, or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered snapshots and exit"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the snapshot somewhere other than BENCH_<name>.json "
        "(single snapshot only)",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name, config in sorted(SNAPSHOTS.items()):
            print(f"{name}: {' '.join([*config['script'], *config['args']])}")
        return 0
    if args.name is None:
        parser.error("name a snapshot (or 'all'); --list shows the registry")
    names = sorted(SNAPSHOTS) if args.name == "all" else [args.name]
    unknown = [name for name in names if name not in SNAPSHOTS]
    if unknown:
        parser.error(f"unknown snapshot(s): {unknown}; --list shows the registry")
    if args.output is not None and len(names) != 1:
        parser.error("--output only applies to a single snapshot")
    for name in names:
        record(name, output=args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
