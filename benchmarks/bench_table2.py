"""Table 2: workflow characteristics and per-system support matrix.

Regenerates the support/characteristics table by interrogating the workload
registry and each comparator system's ``supports`` method, and checks that
the matrix matches the paper.
"""

from __future__ import annotations

from repro.experiments.tables import format_table2, table2_rows
from repro.systems.deepdive import DeepDiveSystem
from repro.systems.helix import HelixSystem
from repro.systems.keystoneml import KeystoneMLSystem
from repro.workloads import WORKLOADS, get_workload

from _bench_helpers import emit, run_once


def test_table2_characteristics(benchmark):
    """Build every workload's DAG and print the Table 2 matrix."""

    def build_all():
        summaries = {}
        for name in ("census", "genomics", "nlp", "mnist"):
            workload = get_workload(name)
            dag = workload.build(workload.initial_config()).compile()
            summaries[name] = dag.summary()
        return summaries

    summaries = run_once(benchmark, build_all)
    emit("Table 2 — workflow characteristics", format_table2())
    emit(
        "Compiled DAG sizes",
        "\n".join(f"{name}: {summary}" for name, summary in summaries.items()),
    )

    rows = table2_rows()
    # Support matrix must match the paper exactly.
    assert rows["Supported by HELIX"] == {"Census": True, "Genomics": True, "IE": True, "MNIST": True}
    assert rows["Supported by KeystoneML"] == {"Census": True, "Genomics": True, "IE": False, "MNIST": True}
    assert rows["Supported by DeepDive"] == {"Census": True, "Genomics": False, "IE": True, "MNIST": False}


def test_table2_system_support_methods(benchmark):
    """The comparator systems' support methods agree with Table 2."""

    def probe():
        systems = {"keystoneml": KeystoneMLSystem(), "deepdive": DeepDiveSystem(), "helix": HelixSystem.opt()}
        return {
            system_name: {workload: system.supports(workload) for workload in sorted(WORKLOADS)}
            for system_name, system in systems.items()
        }

    support = run_once(benchmark, probe)
    emit("System support matrix", "\n".join(f"{k}: {v}" for k, v in support.items()))
    assert support["helix"] == {"census": True, "genomics": True, "mnist": True, "nlp": True}
    assert support["keystoneml"]["nlp"] is False
    assert support["deepdive"]["genomics"] is False and support["deepdive"]["mnist"] is False
