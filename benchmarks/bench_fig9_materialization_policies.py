"""Figure 9: materialization-policy ablation — HELIX OPT vs AM vs NM.

Panels (a)/(b)/(e)/(f): cumulative run time on the four workflows.
Panels (c)/(d): storage used at the end of each iteration (census, genomics).

Expected shapes (Section 6.6): OPT achieves the lowest cumulative run time on
every workflow; AM pays heavy materialization overhead (prohibitively so on
the workflows with large DPR intermediates) and uses far more storage; NM has
no overhead but also no reuse, so it trails OPT wherever reuse matters.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_series_table
from repro.experiments.runner import run_lifecycle
from repro.systems.helix import HelixSystem

from _bench_helpers import ITERATIONS, SEED, emit, run_once


def _run_policies(workload: str):
    systems = {
        "helix-opt": HelixSystem.opt(seed=0),
        "helix-am": HelixSystem.always_materialize(seed=0),
        "helix-nm": HelixSystem.never_materialize(seed=0),
    }
    return {
        name: run_lifecycle(system, workload, n_iterations=ITERATIONS[workload], seed=SEED)
        for name, system in systems.items()
    }


@pytest.mark.parametrize("workload", ["census", "genomics", "nlp", "mnist"])
def test_fig9_cumulative_time_by_policy(benchmark, workload):
    results = run_once(benchmark, lambda: _run_policies(workload))
    series = {name: result.cumulative_times() for name, result in results.items()}
    emit(f"Figure 9 — {workload}: cumulative run time by materialization policy (s)",
         format_series_table(series))

    opt = results["helix-opt"].total_time()
    am = results["helix-am"].total_time()
    nm = results["helix-nm"].total_time()
    emit(f"{workload} totals", f"OPT={opt:.3f}s  AM={am:.3f}s  NM={nm:.3f}s")

    # OPT is never beaten by more than a sliver by either extreme.
    assert opt <= am * 1.15
    assert opt <= nm * 1.15


@pytest.mark.parametrize("workload", ["census", "genomics"])
def test_fig9_storage_by_policy(benchmark, workload):
    results = run_once(benchmark, lambda: _run_policies(workload))
    storage = {name: [float(v) for v in result.storage_series()] for name, result in results.items()}
    emit(f"Figure 9c/d — {workload}: storage per iteration (bytes)", format_series_table(storage, unit="B"))

    # AM always stores at least as much as OPT; NM stores the least (outputs only).
    assert storage["helix-am"][-1] >= storage["helix-opt"][-1]
    assert storage["helix-nm"][-1] <= storage["helix-opt"][-1]
    # NM storage stays small in absolute terms (only the scalar outputs).
    assert storage["helix-nm"][-1] < storage["helix-am"][-1]


def test_fig9_am_overhead_on_large_intermediates(benchmark):
    """On MNIST, AM's materialization overhead is the dominant cost (the paper's
    AM-did-not-complete observation, reproduced as a large overhead ratio)."""
    results = run_once(benchmark, lambda: _run_policies("mnist"))
    am_mat = sum(stats.materialization_time for stats in results["helix-am"].iterations)
    opt_mat = sum(stats.materialization_time for stats in results["helix-opt"].iterations)
    emit("MNIST materialization overhead", f"AM={am_mat:.3f}s  OPT={opt_mat:.3f}s")
    assert am_mat > opt_mat
    assert results["helix-am"].storage_series()[-1] > results["helix-opt"].storage_series()[-1]
