"""Figure 6: per-iteration run-time breakdown (DPR / L/I / PPR / materialization) for Helix.

One benchmark per workflow, printing the breakdown table and asserting the
paper's qualitative observations: PPR-only iterations touch (almost) only the
PPR component, and materialization overhead stays well below compute time.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_breakdown_table
from repro.experiments.runner import run_lifecycle
from repro.systems.helix import HelixSystem
from repro.workloads import IterationType

from _bench_helpers import ITERATIONS, SEED, emit, run_once


def _run(workload: str):
    return run_lifecycle(
        HelixSystem.opt(seed=0), workload, n_iterations=ITERATIONS[workload], seed=SEED
    )


@pytest.mark.parametrize("workload", ["census", "genomics", "nlp", "mnist"])
def test_fig6_breakdown(benchmark, workload):
    result = run_once(benchmark, lambda: _run(workload))
    breakdowns = result.component_breakdowns()
    types = result.iteration_types()
    emit(
        f"Figure 6 — {workload}: per-iteration breakdown (s)",
        format_breakdown_table(breakdowns) + "\niteration types: " + " ".join(types),
    )

    first = breakdowns[0]
    assert first["DPR"] > 0 and first["L/I"] > 0

    # On PPR iterations the DPR and L/I components are (near-)zero: those
    # subtrees are pruned or loaded, not recomputed.
    for breakdown, kind in zip(breakdowns[1:], types[1:]):
        if kind == IterationType.PPR:
            assert breakdown["DPR"] + breakdown["L/I"] < first["DPR"] + first["L/I"]

    # Materialization overhead never dominates an iteration's compute time on
    # the initial run (the paper's "considerably less time" observation).
    assert first["Mat."] < first["DPR"] + first["L/I"] + first["PPR"]
