"""Micro-benchmark for the canonical wire serialization layer.

Measures the three quantities protocol v4 was built around, against a plain
``pickle.dumps``/``loads`` baseline:

* **bytes on the wire** for a numpy-backed artifact — canonical encoding
  must be no larger than pickle for the payloads the executors actually
  ship (the array body dominates both formats; canonical's explicit type
  tags cost a few header bytes, out-of-band buffers save the pickle frame
  opcodes);
* **zero-copy sends** — the artifact's array bytes must appear in
  ``encode_segments`` as out-of-band memoryviews sharing the source arrays'
  memory (the gather-write dispatch path never copies them);
* **round-trip throughput** for the small control messages the coordinator
  and workers exchange per task (encode + decode, messages/second).

Running this file as a script (``python benchmarks/bench_serialization_micro.py
[--smoke] [--json PATH]``) executes all sections standalone, without
pytest-benchmark, and enforces the size and zero-copy bars; throughput is
report-only (absolute rates are machine-specific).  ``--json`` dumps every
section's measurements for the CI artifact upload; CI runs the smoke variant
on every push (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import time
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.storage.canonical import decode, encode, encode_segments
from repro.storage.serialization import deserialize, serialize

from _bench_helpers import emit, run_once

#: The canonical header/tag overhead allowance vs pickle: the acceptance bar
#: is "no worse than pickle" on array-dominated artifacts, with 1% slack for
#: payloads small enough that header bytes are visible at all.
SIZE_RATIO_BAR = 1.01


def _numpy_artifact(scale: int) -> Dict[str, Any]:
    """A model-checkpoint-shaped artifact: large arrays + small metadata."""
    rng = np.random.default_rng(7)
    return {
        "weights": rng.standard_normal((scale, scale)),
        "bias": rng.standard_normal(scale),
        "labels": rng.integers(0, 10, size=scale * 4, dtype=np.int32),
        "meta": {"epoch": 3, "loss": 0.125, "tags": ("census", "dpr")},
    }


def _control_messages(count: int) -> List[Tuple[Any, ...]]:
    """The small per-task frames the dispatch path batches."""
    return [
        ("task", "session-0", f"node-{index}", b"x" * 64) for index in range(count)
    ]


def _artifacts_equal(left: Dict[str, Any], right: Dict[str, Any]) -> bool:
    return (
        np.array_equal(left["weights"], right["weights"])
        and np.array_equal(left["bias"], right["bias"])
        and np.array_equal(left["labels"], right["labels"])
        and left["meta"] == right["meta"]
    )


def measure_artifact_size(scale: int) -> Dict[str, float]:
    """Bytes-on-wire and zero-copy segment counts for the numpy artifact."""
    artifact = _numpy_artifact(scale)
    canonical_payload = serialize(artifact)
    pickle_payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
    segments = encode_segments(artifact)
    arrays = (artifact["weights"], artifact["bias"], artifact["labels"])
    zero_copy = sum(
        1
        for segment in segments
        if isinstance(segment, memoryview)
        and any(
            np.shares_memory(np.frombuffer(segment, dtype=np.uint8), array)
            for array in arrays
        )
    )
    round_trip = _artifacts_equal(deserialize(canonical_payload), artifact)
    return {
        "scale": scale,
        "canonical_bytes": len(canonical_payload),
        "pickle_bytes": len(pickle_payload),
        "size_ratio": len(canonical_payload) / len(pickle_payload),
        "zero_copy_segments": zero_copy,
        "segment_count": len(segments),
        "round_trip_exact": bool(round_trip),
    }


def measure_throughput(message_count: int, repeats: int = 3) -> Dict[str, float]:
    """Best-of-N encode+decode rates for small control messages."""
    messages = _control_messages(message_count)
    best: Dict[str, float] = {"canonical": float("inf"), "pickle": float("inf")}
    for _ in range(repeats):
        started = time.perf_counter()
        for message in messages:
            decode(encode(message))
        best["canonical"] = min(best["canonical"], time.perf_counter() - started)
        started = time.perf_counter()
        for message in messages:
            pickle.loads(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))
        best["pickle"] = min(best["pickle"], time.perf_counter() - started)
    return {
        "messages": message_count,
        "canonical_msgs_per_s": message_count / best["canonical"],
        "pickle_msgs_per_s": message_count / best["pickle"],
        "relative_throughput": best["pickle"] / best["canonical"],
    }


def _format_sections(sections: Dict[str, Dict[str, float]]) -> str:
    size = sections["artifact_size"]
    rate = sections["throughput"]
    return "\n".join(
        [
            f"artifact ({int(size['scale'])}x{int(size['scale'])} f64 + extras):",
            f"  canonical: {int(size['canonical_bytes'])} bytes, "
            f"pickle: {int(size['pickle_bytes'])} bytes "
            f"(ratio {size['size_ratio']:.4f})",
            f"  zero-copy segments: {int(size['zero_copy_segments'])} "
            f"of {int(size['segment_count'])}",
            f"control messages ({int(rate['messages'])} per round):",
            f"  canonical: {rate['canonical_msgs_per_s']:.0f} msg/s, "
            f"pickle: {rate['pickle_msgs_per_s']:.0f} msg/s "
            f"({rate['relative_throughput']:.2f}x relative)",
        ]
    )


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (same measurements, harness-managed timing)
# ---------------------------------------------------------------------------
def test_bench_canonical_artifact_round_trip(benchmark):
    """Encode+decode of the numpy artifact; asserts the size and zero-copy bars."""
    artifact = _numpy_artifact(128)
    payload = benchmark(lambda: serialize(artifact))
    assert _artifacts_equal(deserialize(payload), artifact)
    size = measure_artifact_size(128)
    assert size["size_ratio"] <= SIZE_RATIO_BAR
    assert size["zero_copy_segments"] >= 3  # weights, bias, labels


def test_bench_control_message_round_trip(benchmark):
    """Per-message encode+decode cost on the small-task dispatch shape."""
    message = _control_messages(1)[0]
    result = benchmark(lambda: decode(encode(message)))
    assert result == message


def test_serialization_micro_report(benchmark):
    sections = run_once(
        benchmark,
        lambda: {
            "artifact_size": measure_artifact_size(128),
            "throughput": measure_throughput(500),
        },
    )
    emit("Serialization micro — canonical vs pickle", _format_sections(sections))
    assert sections["artifact_size"]["round_trip_exact"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Canonical serialization vs pickle: size, zero-copy, throughput"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller artifact and fewer messages; used by CI on every push",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write every section's measurements to PATH as JSON "
        "(uploaded as a CI artifact by the serialization smoke job)",
    )
    args = parser.parse_args(argv)
    scale = 64 if args.smoke else 256
    message_count = 200 if args.smoke else 2000

    failures: List[str] = []
    sections: Dict[str, Dict[str, float]] = {
        "artifact_size": measure_artifact_size(scale),
        "throughput": measure_throughput(message_count),
    }
    print(_format_sections(sections))

    size = sections["artifact_size"]
    if not size["round_trip_exact"]:
        failures.append("canonical round trip did not reproduce the artifact")
    if size["size_ratio"] > SIZE_RATIO_BAR:
        failures.append(
            f"canonical payload is {size['size_ratio']:.4f}x pickle — above the "
            f"{SIZE_RATIO_BAR:g}x bytes-on-wire bar"
        )
    else:
        print(
            f"OK: canonical bytes-on-wire {size['size_ratio']:.4f}x pickle "
            f"(bar {SIZE_RATIO_BAR:g}x)"
        )
    if size["zero_copy_segments"] < 3:
        failures.append(
            f"only {int(size['zero_copy_segments'])} zero-copy segments — the "
            f"artifact's three arrays must all ship out of band"
        )
    else:
        print(
            f"OK: {int(size['zero_copy_segments'])} zero-copy segments "
            f"(weights, bias, labels ship without copies)"
        )
    print(
        f"INFO: control-message throughput {sections['throughput']['relative_throughput']:.2f}x "
        f"relative to pickle (report-only)"
    )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(
                {
                    "smoke": bool(args.smoke),
                    "sections": sections,
                    "failures": failures,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"wrote measurements to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
