"""Figure 8: fraction of nodes in Sp / Sl / Sc per iteration, Helix OPT vs Helix AM.

The paper's point: OPT enables exactly the same reuse as the
materialize-everything variant (same prune/load behaviour) while writing far
less to disk — the optimizer's choices, not indiscriminate materialization,
are what drive reuse.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_fraction_table
from repro.experiments.runner import run_lifecycle
from repro.systems.helix import HelixSystem

from _bench_helpers import ITERATIONS, SEED, emit, run_once


@pytest.mark.parametrize("workload", ["census", "genomics"])
def test_fig8_state_fractions(benchmark, workload):
    def run():
        opt = run_lifecycle(HelixSystem.opt(seed=0), workload,
                            n_iterations=ITERATIONS[workload], seed=SEED)
        am = run_lifecycle(HelixSystem.always_materialize(seed=0), workload,
                           n_iterations=ITERATIONS[workload], seed=SEED)
        return opt, am

    opt, am = run_once(benchmark, run)
    emit(f"Figure 8 — {workload} HELIX OPT state fractions",
         format_fraction_table(opt.state_fraction_series()))
    emit(f"Figure 8 — {workload} HELIX AM state fractions",
         format_fraction_table(am.state_fraction_series()))

    opt_fractions = opt.state_fraction_series()
    am_fractions = am.state_fraction_series()

    # Iteration 0 computes everything under both policies.
    assert opt_fractions[0]["Sc"] == 1.0 and am_fractions[0]["Sc"] == 1.0

    # From iteration 1 on, OPT recomputes no more than AM does (same reuse),
    # which is the paper's "exact same reuse as AM" observation.
    for opt_row, am_row in zip(opt_fractions[1:], am_fractions[1:]):
        assert opt_row["Sc"] <= am_row["Sc"] + 1e-9

    # Reuse is substantial: on average well under half the DAG is recomputed.
    mean_compute = sum(row["Sc"] for row in opt_fractions[1:]) / max(len(opt_fractions) - 1, 1)
    assert mean_compute < 0.5
