"""Figure 10: peak and average memory per iteration for Helix.

The paper's observations: Helix runs comfortably within its memory budget on
all four workflows, and on iterations with heavy reuse the memory footprint
drops along with the run time (small loaded intermediates prune large
subtrees instead of overloading memory).
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_memory_table
from repro.experiments.runner import run_lifecycle
from repro.systems.helix import HelixSystem
from repro.workloads import IterationType

from _bench_helpers import ITERATIONS, SEED, emit, run_once

#: Generous ceiling standing in for the paper's 30 GB allocation, scaled to
#: the synthetic dataset sizes.
MEMORY_CEILING_BYTES = 512 * 1024 * 1024


@pytest.mark.parametrize("workload", ["census", "genomics", "nlp", "mnist"])
def test_fig10_memory(benchmark, workload):
    result = run_once(
        benchmark,
        lambda: run_lifecycle(HelixSystem.opt(seed=0), workload,
                              n_iterations=ITERATIONS[workload], seed=SEED),
    )
    memory = result.memory_series()
    emit(f"Figure 10 — {workload}: peak / average cache memory", format_memory_table(memory))

    peaks = [row["peak"] for row in memory]
    averages = [row["average"] for row in memory]

    # Within budget on every iteration, and averages never exceed peaks.
    assert max(peaks) < MEMORY_CEILING_BYTES
    assert all(avg <= peak for avg, peak in zip(averages, peaks))

    # Iterations that reuse heavily (PPR-only changes) use no more memory than
    # the initial full computation.
    first_peak = peaks[0]
    for peak, kind in zip(peaks[1:], result.iteration_types()[1:]):
        if kind == IterationType.PPR:
            assert peak <= first_peak * 1.05
