"""Figure 5: cumulative run time over iterations, Helix vs KeystoneML vs DeepDive.

One benchmark per workflow (Census, Genomics, NLP, MNIST), printing the
cumulative run-time series per system and asserting the qualitative shape the
paper reports: Helix OPT dominates the comparators wherever cross-iteration
reuse exists, and does not pay a large penalty where it does not (MNIST).
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure5, speedup
from repro.experiments.report import format_series_table
from repro.experiments.runner import run_comparison
from repro.systems.deepdive import DeepDiveSystem
from repro.systems.helix import HelixSystem
from repro.systems.keystoneml import KeystoneMLSystem

from _bench_helpers import ITERATIONS, SEED, emit, run_once


def _run(workload: str):
    return run_comparison(
        [HelixSystem.opt(seed=0), KeystoneMLSystem(seed=0), DeepDiveSystem(seed=0)],
        workload,
        n_iterations=ITERATIONS[workload],
        seed=SEED,
    )


def _print(workload: str, results) -> None:
    series = {name: result.cumulative_times() for name, result in results.items()}
    types = next(iter(results.values())).iteration_types()
    emit(
        f"Figure 5 — {workload}: cumulative run time (s)",
        format_series_table(series)
        + "\niteration types: "
        + " ".join(types),
    )


def test_fig5a_census(benchmark):
    results = run_once(benchmark, lambda: _run("census"))
    _print("census", results)
    helix_vs_keystone = speedup(results, "keystoneml")
    helix_vs_deepdive = speedup(results, "deepdive")
    emit("Census speedups", f"vs KeystoneML: {helix_vs_keystone:.1f}x   vs DeepDive: {helix_vs_deepdive:.1f}x")
    # Paper: 19x vs KeystoneML over 10 iterations; shape check: a large factor.
    assert helix_vs_keystone > 3.0
    assert helix_vs_deepdive > 3.0


def test_fig5b_genomics(benchmark):
    results = run_once(benchmark, lambda: _run("genomics"))
    _print("genomics", results)
    assert "deepdive" not in results  # unsupported (Table 2)
    # Paper: ~3x over KeystoneML.
    assert speedup(results, "keystoneml") > 1.5


def test_fig5c_nlp(benchmark):
    results = run_once(benchmark, lambda: _run("nlp"))
    _print("nlp", results)
    assert "keystoneml" not in results  # unsupported (Table 2)
    # Paper: DeepDive grows much faster because it never reuses the parsed corpus.
    assert speedup(results, "deepdive") > 1.5
    helix_times = results["helix-opt"].iteration_times()
    assert max(helix_times[1:]) < helix_times[0]


def test_fig5d_mnist(benchmark):
    results = run_once(benchmark, lambda: _run("mnist"))
    _print("mnist", results)
    helix = results["helix-opt"].total_time()
    keystone = results["keystoneml"].total_time()
    emit("MNIST ratio", f"helix/keystoneml cumulative = {helix / keystone:.2f}")
    # Paper: little reuse is available; Helix must stay close to KeystoneML
    # (only slight overhead on DPR/L-I iterations) and may win thanks to PPR reuse.
    assert helix < keystone * 1.3
