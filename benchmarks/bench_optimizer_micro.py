"""Micro-benchmarks and ablations for the optimizer itself.

These are conventional pytest-benchmark measurements (multiple rounds) of the
two optimization algorithms on synthetic DAGs, plus an ablation comparing the
streaming OPT-MAT-PLAN heuristic against the exact (exponential) solver on
small DAGs — quantifying the optimality gap DESIGN.md calls out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dag import Node, WorkflowDAG
from repro.core.operators import Component, Operator, RunContext
from repro.optimizer.maxflow import FlowNetwork
from repro.optimizer.oep import solve_oep
from repro.optimizer.omp import StreamingMaterializationPolicy, optimal_materialization_plan

from _bench_helpers import emit


class _Noop(Operator):
    def __init__(self, tag: int):
        self.tag = tag

    def config(self):
        return {"tag": self.tag}

    def run(self, inputs, context):  # pragma: no cover - never executed here
        return self.tag


def _layered_dag(layers: int, width: int, seed: int = 0) -> WorkflowDAG:
    """A layered DAG with ``layers x width`` nodes and random cross-layer edges."""
    rng = np.random.default_rng(seed)
    nodes = []
    tag = 0
    previous_layer: list = []
    for layer in range(layers):
        current_layer = []
        for i in range(width):
            name = f"l{layer}_{i}"
            parents = []
            if previous_layer:
                count = int(rng.integers(1, min(3, len(previous_layer)) + 1))
                parents = list(rng.choice(previous_layer, size=count, replace=False))
            nodes.append(Node.create(name, _Noop(tag), parents=parents,
                                     is_output=(layer == layers - 1)))
            current_layer.append(name)
            tag += 1
        previous_layer = current_layer
    return WorkflowDAG(nodes)


def _random_costs(dag: WorkflowDAG, seed: int = 0):
    rng = np.random.default_rng(seed)
    compute = {name: float(rng.uniform(0.5, 5.0)) for name in dag.node_names}
    load = {
        name: (float(rng.uniform(0.05, 1.0)) if rng.random() < 0.6 else float("inf"))
        for name in dag.node_names
    }
    forced = [name for name in dag.node_names if rng.random() < 0.15]
    return compute, load, forced


def test_bench_oep_solver_medium_dag(benchmark):
    """OPT-EXEC-PLAN on a ~60-node DAG (typical compiled workflow size)."""
    dag = _layered_dag(layers=6, width=10)
    compute, load, forced = _random_costs(dag)
    plan = benchmark(lambda: solve_oep(dag, compute, load, forced_compute=forced))
    assert len(plan.states) == len(dag)


def test_bench_oep_solver_large_dag(benchmark):
    """OPT-EXEC-PLAN on a ~300-node DAG (stress test; still well under a second)."""
    dag = _layered_dag(layers=15, width=20, seed=1)
    compute, load, forced = _random_costs(dag, seed=1)
    plan = benchmark(lambda: solve_oep(dag, compute, load, forced_compute=forced))
    assert len(plan.states) == len(dag)


def test_bench_maxflow_dense_network(benchmark):
    """Edmonds–Karp on a dense bipartite network."""
    network = FlowNetwork()
    rng = np.random.default_rng(0)
    left = [f"u{i}" for i in range(30)]
    right = [f"v{i}" for i in range(30)]
    for u in left:
        network.add_edge("s", u, float(rng.integers(1, 10)))
    for v in right:
        network.add_edge(v, "t", float(rng.integers(1, 10)))
    for u in left:
        for v in right:
            if rng.random() < 0.3:
                network.add_edge(u, v, float(rng.integers(1, 5)))
    value = benchmark(lambda: network.max_flow("s", "t")[0])
    assert value > 0


def test_bench_streaming_policy_decisions(benchmark):
    """Per-node cost of the streaming materialization decision on a 300-node DAG."""
    dag = _layered_dag(layers=15, width=20, seed=2)
    compute, _load, _forced = _random_costs(dag, seed=2)
    policy = StreamingMaterializationPolicy()

    def decide_all():
        return sum(
            1
            for name in dag.node_names
            if policy.decide(name, dag, compute, 0.1, 100, None).materialize
        )

    count = benchmark(decide_all)
    assert 0 <= count <= len(dag)


def test_ablation_streaming_vs_exact_omp(benchmark):
    """Optimality gap of Algorithm 2 vs. the exact OPT-MAT-PLAN on small random DAGs."""

    def measure_gap():
        rng = np.random.default_rng(3)
        gaps = []
        for trial in range(10):
            dag = _layered_dag(layers=3, width=3, seed=trial)
            compute = {name: float(rng.uniform(0.5, 4.0)) for name in dag.node_names}
            load = {name: float(rng.uniform(0.05, 0.8)) for name in dag.node_names}
            sizes = {name: 100 for name in dag.node_names}
            _best, best_objective = optimal_materialization_plan(dag, compute, load, sizes)

            policy = StreamingMaterializationPolicy()
            chosen = {
                name
                for name in dag.node_names
                if policy.decide(name, dag, compute, load[name], sizes[name], None).materialize
            }
            next_load = {n: (load[n] if n in chosen else float("inf")) for n in dag.node_names}
            heuristic_objective = sum(load[n] for n in chosen) + solve_oep(
                dag, compute, next_load, required=dag.outputs
            ).estimated_time
            gaps.append(heuristic_objective / max(best_objective, 1e-9))
        return gaps

    gaps = benchmark.pedantic(measure_gap, rounds=1, iterations=1)
    emit(
        "Ablation — streaming OMP heuristic vs exact",
        f"objective ratios (heuristic/optimal): mean={np.mean(gaps):.2f} max={np.max(gaps):.2f}",
    )
    # The heuristic never does worse than a small constant factor on these DAGs.
    assert max(gaps) < 4.0
