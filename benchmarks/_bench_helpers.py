"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section.  The underlying experiment (a multi-iteration lifecycle over one or
more systems) is executed exactly once per benchmark via
``benchmark.pedantic(rounds=1)`` — the quantity of interest is the *content*
of the series (who wins, by what factor), which the benchmark prints, not the
wall-clock time of the harness itself.

Dataset sizes and iteration counts are scaled down from the paper's testbed
so the whole harness completes in minutes on a laptop; the qualitative shapes
(reported in EXPERIMENTS.md) are preserved.
"""

from __future__ import annotations

from typing import Callable, Dict

import pytest

#: Iterations per workload (paper defaults: 10, NLP 6); kept as-is since the
#: synthetic datasets are small.
ITERATIONS: Dict[str, int] = {"census": 10, "genomics": 10, "nlp": 6, "mnist": 10}

#: Seed shared by every benchmark so all systems see identical change sequences.
SEED = 7


def run_once(benchmark, fn: Callable[[], object]):
    """Run an experiment exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(title: str, body: str) -> None:
    """Print a labelled result block (captured by pytest, shown with -s)."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
