"""Figure 7: scalability with dataset size (7a), cluster size (7b) and
engine parallelism (7c).

7(a) runs the census lifecycle at 1x and Nx dataset scale for Helix and
KeystoneML (the paper uses 10x; the harness defaults to 4x to keep run time
modest — pass ``--scale`` via REPRO_FIG7_SCALE to change it).  7(b) repeats
the census-at-scale lifecycle under a simulated 2/4/8-worker cluster cost
model for both systems.  7(c) compares the serial and parallel execution
engines on a wide synthetic DAG (independent latency-bound branches) where
DAG-level parallelism should pay off: the parallel engine must beat the
serial engine by >= 2x wall-clock while producing equivalent run statistics.

Running this file as a script (``python benchmarks/bench_fig7_scalability.py
[--smoke]``) executes the 7(c) comparison standalone, without
pytest-benchmark; ``--smoke`` shrinks the DAG for CI.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, Tuple

import pytest

from repro.core.signatures import compute_node_signatures
from repro.execution.engine import ExecutionEngine
from repro.execution.equivalence import assert_equivalent_runs
from repro.execution.parallel import ParallelExecutionEngine
from repro.execution.tracker import RunStats
from repro.experiments.figures import figure7b
from repro.experiments.report import format_series_table
from repro.experiments.runner import run_comparison
from repro.optimizer.metrics import StatsStore
from repro.optimizer.oep import solve_oep
from repro.optimizer.omp import StreamingMaterializationPolicy
from repro.storage.store import InMemoryStore
from repro.systems.helix import HelixSystem
from repro.systems.keystoneml import KeystoneMLSystem
from repro.workloads.synthetic import make_wide_dag

from _bench_helpers import SEED, emit, run_once

#: Dataset scale factor for the "Census Nx" experiment (paper: 10).
SCALE = float(os.environ.get("REPRO_FIG7_SCALE", "4"))
ITERS = 6

#: Wide-DAG shape for the 7(c) engine comparison: >= 8 independent branches.
FIG7C_BRANCHES = 8
FIG7C_DEPTH = 3
FIG7C_NODE_SECONDS = 0.02
FIG7C_MAX_WORKERS = 4


def test_fig7a_dataset_scalability(benchmark):
    def run():
        output = {}
        for scale in (1.0, SCALE):
            results = run_comparison(
                [HelixSystem.opt(seed=0), KeystoneMLSystem(seed=0)],
                "census",
                n_iterations=ITERS,
                seed=SEED,
                scale=scale,
            )
            for name, result in results.items():
                output[f"{name}-x{scale:g}"] = result.cumulative_times()
        return output

    series = run_once(benchmark, run)
    emit(f"Figure 7a — census vs census {SCALE:g}x cumulative run time (s)", format_series_table(series))

    helix_small = series["helix-opt-x1"][-1]
    helix_large = series[f"helix-opt-x{SCALE:g}"][-1]
    keystone_small = series["keystoneml-x1"][-1]
    keystone_large = series[f"keystoneml-x{SCALE:g}"][-1]

    # Run time grows with dataset size for both systems (roughly linearly).
    assert helix_large > helix_small
    assert keystone_large > keystone_small
    assert keystone_large < keystone_small * SCALE * 3

    # Helix keeps a clear advantage at both scales.
    assert helix_small < keystone_small
    assert helix_large < keystone_large


def test_fig7b_cluster_scalability(benchmark):
    series = run_once(
        benchmark,
        lambda: figure7b(n_iterations=ITERS, seed=SEED, worker_counts=(2, 4, 8), scale=2.0),
    )
    flattened = {name: values["cumulative"] for name, values in series.items()}
    emit("Figure 7b — census 2x on simulated 2/4/8-worker clusters (s)", format_series_table(flattened))

    # Helix beats KeystoneML at every cluster size (paper observation 1).
    for workers in (2, 4, 8):
        assert flattened[f"helix-opt-{workers}w"][-1] < flattened[f"keystoneml-{workers}w"][-1]

    # KeystoneML keeps improving with more workers (roughly linear scaling).
    assert flattened["keystoneml-8w"][-1] < flattened["keystoneml-2w"][-1]

    # Helix improves markedly from 2 to 4 workers (super-linear DPR scaling via
    # loop fusion); beyond that, PPR communication overhead erodes the gains.
    assert flattened["helix-opt-4w"][-1] < flattened["helix-opt-2w"][-1]


# ---------------------------------------------------------------------------
# Figure 7c: serial vs parallel execution engine on a wide DAG
# ---------------------------------------------------------------------------
def _run_engine(
    engine_cls,
    branches: int,
    depth: int,
    node_seconds: float,
    **engine_kwargs,
) -> Tuple[float, RunStats]:
    """Execute the wide DAG once on a fresh engine; return (wall_clock, stats)."""
    dag = make_wide_dag(branches=branches, depth=depth, node_seconds=node_seconds)
    signatures = compute_node_signatures(dag)
    plan = solve_oep(
        dag,
        {name: 1.0 for name in dag.node_names},
        {name: float("inf") for name in dag.node_names},
        forced_compute=dag.node_names,
    )
    engine = engine_cls(
        store=InMemoryStore(),
        policy=StreamingMaterializationPolicy(),
        stats=StatsStore(),
        **engine_kwargs,
    )
    started = time.perf_counter()
    stats = engine.execute(dag, plan, signatures)
    return time.perf_counter() - started, stats


def run_engine_comparison(
    branches: int = FIG7C_BRANCHES,
    depth: int = FIG7C_DEPTH,
    node_seconds: float = FIG7C_NODE_SECONDS,
    max_workers: int = FIG7C_MAX_WORKERS,
    repeats: int = 2,
) -> Dict[str, float]:
    """Best-of-N serial vs parallel wall-clock on the wide DAG.

    Also asserts the two engines produced equivalent run statistics
    (timing excluded — the cost model here charges wall-clock).
    """
    serial_best = float("inf")
    parallel_best = float("inf")
    serial_stats = parallel_stats = None
    for _ in range(repeats):
        elapsed, stats = _run_engine(ExecutionEngine, branches, depth, node_seconds)
        if elapsed < serial_best:
            serial_best, serial_stats = elapsed, stats
        elapsed, stats = _run_engine(
            ParallelExecutionEngine, branches, depth, node_seconds, max_workers=max_workers
        )
        if elapsed < parallel_best:
            parallel_best, parallel_stats = elapsed, stats
    assert_equivalent_runs(serial_stats, parallel_stats, include_times=False)
    return {
        "nodes": branches * depth + 2,
        "branches": branches,
        "max_workers": max_workers,
        "serial_seconds": serial_best,
        "parallel_seconds": parallel_best,
        "speedup": serial_best / parallel_best,
    }


def _format_engine_comparison(result: Dict[str, float]) -> str:
    return "\n".join(
        [
            f"wide DAG: {result['branches']} branches, {int(result['nodes'])} nodes",
            f"serial engine    : {result['serial_seconds']:.3f}s",
            f"parallel engine  : {result['parallel_seconds']:.3f}s ({int(result['max_workers'])} workers)",
            f"speedup          : {result['speedup']:.2f}x",
        ]
    )


def test_fig7c_parallel_engine(benchmark):
    result = run_once(benchmark, run_engine_comparison)
    emit("Figure 7c — serial vs parallel execution engine on a wide DAG", _format_engine_comparison(result))

    # DAG-level parallelism over latency-bound branches must pay off by >= 2x
    # (the acceptance bar; observed ~3x with 4 workers over 8 branches).
    assert result["speedup"] >= 2.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Serial-vs-parallel engine comparison (Figure 7c)")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small DAG + relaxed speedup bar; used by CI as a fast sanity check",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        result = run_engine_comparison(branches=8, depth=2, node_seconds=0.01, repeats=2)
        bar = 1.5
    else:
        result = run_engine_comparison()
        bar = 2.0

    print(_format_engine_comparison(result))
    if result["speedup"] < bar:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the {bar:g}x bar", file=sys.stderr)
        return 1
    print(f"OK: speedup {result['speedup']:.2f}x >= {bar:g}x (equivalent run statistics)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
