"""Figure 7: scalability with dataset size (7a) and cluster size (7b).

7(a) runs the census lifecycle at 1x and Nx dataset scale for Helix and
KeystoneML (the paper uses 10x; the harness defaults to 4x to keep run time
modest — pass ``--scale`` via REPRO_FIG7_SCALE to change it).  7(b) repeats
the census-at-scale lifecycle under a simulated 2/4/8-worker cluster cost
model for both systems.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.figures import figure7b
from repro.experiments.report import format_series_table
from repro.experiments.runner import run_comparison
from repro.systems.helix import HelixSystem
from repro.systems.keystoneml import KeystoneMLSystem

from _bench_helpers import SEED, emit, run_once

#: Dataset scale factor for the "Census Nx" experiment (paper: 10).
SCALE = float(os.environ.get("REPRO_FIG7_SCALE", "4"))
ITERS = 6


def test_fig7a_dataset_scalability(benchmark):
    def run():
        output = {}
        for scale in (1.0, SCALE):
            results = run_comparison(
                [HelixSystem.opt(seed=0), KeystoneMLSystem(seed=0)],
                "census",
                n_iterations=ITERS,
                seed=SEED,
                scale=scale,
            )
            for name, result in results.items():
                output[f"{name}-x{scale:g}"] = result.cumulative_times()
        return output

    series = run_once(benchmark, run)
    emit(f"Figure 7a — census vs census {SCALE:g}x cumulative run time (s)", format_series_table(series))

    helix_small = series["helix-opt-x1"][-1]
    helix_large = series[f"helix-opt-x{SCALE:g}"][-1]
    keystone_small = series["keystoneml-x1"][-1]
    keystone_large = series[f"keystoneml-x{SCALE:g}"][-1]

    # Run time grows with dataset size for both systems (roughly linearly).
    assert helix_large > helix_small
    assert keystone_large > keystone_small
    assert keystone_large < keystone_small * SCALE * 3

    # Helix keeps a clear advantage at both scales.
    assert helix_small < keystone_small
    assert helix_large < keystone_large


def test_fig7b_cluster_scalability(benchmark):
    series = run_once(
        benchmark,
        lambda: figure7b(n_iterations=ITERS, seed=SEED, worker_counts=(2, 4, 8), scale=2.0),
    )
    flattened = {name: values["cumulative"] for name, values in series.items()}
    emit("Figure 7b — census 2x on simulated 2/4/8-worker clusters (s)", format_series_table(flattened))

    # Helix beats KeystoneML at every cluster size (paper observation 1).
    for workers in (2, 4, 8):
        assert flattened[f"helix-opt-{workers}w"][-1] < flattened[f"keystoneml-{workers}w"][-1]

    # KeystoneML keeps improving with more workers (roughly linear scaling).
    assert flattened["keystoneml-8w"][-1] < flattened["keystoneml-2w"][-1]

    # Helix improves markedly from 2 to 4 workers (super-linear DPR scaling via
    # loop fusion); beyond that, PPR communication overhead erodes the gains.
    assert flattened["helix-opt-4w"][-1] < flattened["helix-opt-2w"][-1]
