"""Figure 7: scalability with dataset size (7a), cluster size (7b) and
executor parallelism (7c).

7(a) runs the census lifecycle at 1x and Nx dataset scale for Helix and
KeystoneML (the paper uses 10x; the harness defaults to 4x to keep run time
modest — pass ``--scale`` via REPRO_FIG7_SCALE to change it).  7(b) repeats
the census-at-scale lifecycle under a simulated 2/4/8-worker cluster cost
model for both systems.  7(c) is a four-way inline/thread/process/distributed
executor comparison on two synthetic wide-DAG workloads:

* **latency-bound** (``make_wide_dag``, real sleeps): the thread executor
  must beat inline by >= 2x wall-clock — latency overlaps even on one core;
* **CPU-bound** (``make_cpu_dag``, pure-Python spin loops that hold the
  GIL): the process executor must beat inline by >= 2x with 4 workers on a
  >= 4-core machine, while the thread executor stays < 1.3x (the GIL gap the
  process executor exists to close).  The distributed executor — 4 local TCP
  workers — must beat inline by >= 1.5x on >= 4 cores (it pays a framing +
  socket round trip per task on top of the process executor's pickling).
  On machines with fewer cores the CPU bars are reported but not enforced —
  there is no parallel CPU to win.

Every comparison also asserts all executors produced equivalent run
statistics (timing excluded — the cost model here charges wall-clock).

Running this file as a script (``python benchmarks/bench_fig7_scalability.py
[--smoke] [--executor thread|process|distributed|all] [--workers host:port,...]
[--json PATH]``) executes the 7(c) comparisons standalone, without
pytest-benchmark; ``--smoke`` shrinks the DAGs for CI and ``--executor``
selects the latency (thread), CPU (process), distributed, or all sections.
The distributed section additionally reports depth-2 **pipelined dispatch**
vs one-task-per-worker on short latency-bound tasks (report-only — the win
rides on the framing round trip), an **artifact plane** section measuring
coordinator bytes-on-wire with worker-to-worker transfer on vs off across
two same-seed served runs (report-only; see ``docs/artifacts.md``) and,
with ``--workers``, times pre-started remote workers
(``python -m repro.execution.worker``) instead of the local spawn pool
(report-only: remote workers share CI's cores but pay connect + framing
per task).  ``--json`` dumps every section's measurements for the CI
artifact upload.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import pytest

from repro.core.dag import WorkflowDAG
from repro.core.signatures import compute_node_signatures
from repro.execution.engine import create_engine
from repro.execution.equivalence import assert_equivalent_runs
from repro.execution.executors import DistributedExecutor, Executor
from repro.execution.tracker import RunStats
from repro.experiments.figures import figure7b
from repro.experiments.report import format_series_table
from repro.experiments.runner import run_comparison
from repro.optimizer.metrics import StatsStore
from repro.optimizer.oep import solve_oep
from repro.optimizer.omp import StreamingMaterializationPolicy
from repro.storage.store import InMemoryStore
from repro.systems.helix import HelixSystem
from repro.systems.keystoneml import KeystoneMLSystem
from repro.workloads.synthetic import make_cpu_dag, make_wide_dag

from _bench_helpers import SEED, emit, run_once

#: Dataset scale factor for the "Census Nx" experiment (paper: 10).
SCALE = float(os.environ.get("REPRO_FIG7_SCALE", "4"))
ITERS = 6

#: Wide-DAG shape for the 7(c) latency comparison: >= 8 independent branches.
FIG7C_BRANCHES = 8
FIG7C_DEPTH = 3
FIG7C_NODE_SECONDS = 0.02
FIG7C_MAX_WORKERS = 4

#: CPU-bound shape: same topology, pure-Python spin loops instead of sleeps.
FIG7C_CPU_DEPTH = 2
FIG7C_CPU_SPIN = 1_500_000


def test_fig7a_dataset_scalability(benchmark):
    def run():
        output = {}
        for scale in (1.0, SCALE):
            results = run_comparison(
                [HelixSystem.opt(seed=0), KeystoneMLSystem(seed=0)],
                "census",
                n_iterations=ITERS,
                seed=SEED,
                scale=scale,
            )
            for name, result in results.items():
                output[f"{name}-x{scale:g}"] = result.cumulative_times()
        return output

    series = run_once(benchmark, run)
    emit(f"Figure 7a — census vs census {SCALE:g}x cumulative run time (s)", format_series_table(series))

    helix_small = series["helix-opt-x1"][-1]
    helix_large = series[f"helix-opt-x{SCALE:g}"][-1]
    keystone_small = series["keystoneml-x1"][-1]
    keystone_large = series[f"keystoneml-x{SCALE:g}"][-1]

    # Run time grows with dataset size for both systems (roughly linearly).
    assert helix_large > helix_small
    assert keystone_large > keystone_small
    assert keystone_large < keystone_small * SCALE * 3

    # Helix keeps a clear advantage at both scales.
    assert helix_small < keystone_small
    assert helix_large < keystone_large


def test_fig7b_cluster_scalability(benchmark):
    series = run_once(
        benchmark,
        lambda: figure7b(n_iterations=ITERS, seed=SEED, worker_counts=(2, 4, 8), scale=2.0),
    )
    flattened = {name: values["cumulative"] for name, values in series.items()}
    emit("Figure 7b — census 2x on simulated 2/4/8-worker clusters (s)", format_series_table(flattened))

    # Helix beats KeystoneML at every cluster size (paper observation 1).
    for workers in (2, 4, 8):
        assert flattened[f"helix-opt-{workers}w"][-1] < flattened[f"keystoneml-{workers}w"][-1]

    # KeystoneML keeps improving with more workers (roughly linear scaling).
    assert flattened["keystoneml-8w"][-1] < flattened["keystoneml-2w"][-1]

    # Helix improves markedly from 2 to 4 workers (super-linear DPR scaling via
    # loop fusion); beyond that, PPR communication overhead erodes the gains.
    assert flattened["helix-opt-4w"][-1] < flattened["helix-opt-2w"][-1]


# ---------------------------------------------------------------------------
# Figure 7c: inline vs thread vs process vs distributed executors on wide DAGs
# ---------------------------------------------------------------------------
EXECUTORS = ("inline", "thread", "process", "distributed")


def _run_executor(
    executor: Union[str, Executor],
    dag_factory: Callable[[], WorkflowDAG],
    max_workers: Optional[int] = None,
) -> Tuple[float, RunStats]:
    """Execute one DAG on a fresh engine; return (wall_clock, stats).

    The wall clock includes worker-pool startup — the process executor must
    amortize fork + payload pickling to win, exactly as it must in practice.
    ``executor`` may be a ready instance (e.g. a remote-configured
    distributed executor); the engine then drains it between runs and the
    caller owns its ``shutdown``, so startup amortizes across repeats just
    as a warm pool would in production.
    """
    dag = dag_factory()
    signatures = compute_node_signatures(dag)
    plan = solve_oep(
        dag,
        {name: 1.0 for name in dag.node_names},
        {name: float("inf") for name in dag.node_names},
        forced_compute=dag.node_names,
    )
    engine = create_engine(
        executor,
        max_workers=None if isinstance(executor, Executor) else max_workers,
        store=InMemoryStore(),
        policy=StreamingMaterializationPolicy(),
        stats=StatsStore(),
    )
    started = time.perf_counter()
    stats = engine.execute(dag, plan, signatures)
    return time.perf_counter() - started, stats


def run_executor_comparison(
    dag_factory: Callable[[], WorkflowDAG],
    max_workers: int = FIG7C_MAX_WORKERS,
    repeats: int = 2,
    executors: Sequence[str] = EXECUTORS,
    overrides: Optional[Dict[str, Executor]] = None,
) -> Dict[str, float]:
    """Best-of-N wall-clock for every executor on the same DAG.

    Also asserts all executors produced equivalent run statistics (timing
    excluded — the cost model here charges wall-clock).  ``overrides`` maps
    an executor name to a ready instance to time instead of the
    name-configured default — e.g. ``{"distributed":
    DistributedExecutor(workers=[...])}`` for remote workers (the caller
    shuts overrides down).  Returns ``{executor}_seconds`` and
    ``{executor}_speedup`` (relative to inline) per executor.
    """
    best: Dict[str, float] = {name: float("inf") for name in executors}
    best_stats: Dict[str, RunStats] = {}
    for _ in range(repeats):
        for name in executors:
            spec: Union[str, Executor] = name
            if overrides is not None and name in overrides:
                spec = overrides[name]
            elapsed, stats = _run_executor(
                spec, dag_factory, max_workers=None if name == "inline" else max_workers
            )
            if elapsed < best[name]:
                best[name], best_stats[name] = elapsed, stats
    for name in executors:
        if name != "inline":
            assert_equivalent_runs(best_stats["inline"], best_stats[name], include_times=False)
    result: Dict[str, float] = {"max_workers": max_workers}
    for name in executors:
        result[f"{name}_seconds"] = best[name]
        result[f"{name}_speedup"] = best["inline"] / best[name]
    return result


def _format_executor_comparison(title: str, result: Dict[str, float]) -> str:
    lines = [title]
    for name in EXECUTORS:
        key = f"{name}_seconds"
        if key not in result:
            continue
        lines.append(
            f"{name:<8}: {result[key]:.3f}s  ({result[f'{name}_speedup']:.2f}x vs inline)"
        )
    lines.append(f"workers : {int(result['max_workers'])}, cores: {os.cpu_count()}")
    return "\n".join(lines)


def _latency_comparison(
    smoke: bool = False,
    executors: Sequence[str] = EXECUTORS,
    overrides: Optional[Dict[str, Executor]] = None,
) -> Dict[str, float]:
    branches, depth, node_seconds = (8, 2, 0.01) if smoke else (
        FIG7C_BRANCHES, FIG7C_DEPTH, FIG7C_NODE_SECONDS
    )
    return run_executor_comparison(
        lambda: make_wide_dag(branches=branches, depth=depth, node_seconds=node_seconds),
        executors=executors,
        overrides=overrides,
    )


def _cpu_comparison(
    smoke: bool = False,
    executors: Sequence[str] = EXECUTORS,
    overrides: Optional[Dict[str, Executor]] = None,
    max_workers: int = FIG7C_MAX_WORKERS,
) -> Dict[str, float]:
    branches, depth, spin = (8, 1, 500_000) if smoke else (
        FIG7C_BRANCHES, FIG7C_CPU_DEPTH, FIG7C_CPU_SPIN
    )
    return run_executor_comparison(
        lambda: make_cpu_dag(branches=branches, depth=depth, spin=spin),
        max_workers=max_workers,
        executors=executors,
        overrides=overrides,
    )


def run_pipeline_comparison(
    smoke: bool = False,
    workers: Optional[Sequence[str]] = None,
    repeats: int = 2,
) -> Dict[str, float]:
    """Distributed dispatch with ``pipeline_depth`` 1 vs 2 on short tasks.

    Uses the latency-bound wide DAG (many short sleeps), where the per-task
    framing round trip is a visible fraction of the task itself — exactly
    the regime depth-2 pipelining targets: the coordinator frames task N+1
    onto a worker's socket while the worker still executes task N.  The
    outcome is **report-only** (the gain rides on round-trip latency, which
    loopback CI cannot bound reliably); both variants must still produce
    equivalent run statistics.  Remote ``workers`` addresses are used for
    both variants when given (sequentially — a listening worker serves one
    coordinator at a time).
    """
    branches, depth, node_seconds = (8, 2, 0.005) if smoke else (
        FIG7C_BRANCHES, FIG7C_DEPTH, 0.01
    )
    dag_factory = lambda: make_wide_dag(  # noqa: E731 - mirrors the sections above
        branches=branches, depth=depth, node_seconds=node_seconds
    )
    best: Dict[str, float] = {}
    best_stats: Dict[str, RunStats] = {}
    for label, pipeline_depth in (("unpipelined", 1), ("pipelined", 2)):
        if workers is not None:
            executor = DistributedExecutor(workers=workers, pipeline_depth=pipeline_depth)
        else:
            executor = DistributedExecutor(
                max_workers=FIG7C_MAX_WORKERS, pipeline_depth=pipeline_depth
            )
        try:
            best[label] = float("inf")
            for _ in range(repeats):
                elapsed, stats = _run_executor(executor, dag_factory)
                if elapsed < best[label]:
                    best[label], best_stats[label] = elapsed, stats
        finally:
            executor.shutdown()
    assert_equivalent_runs(
        best_stats["unpipelined"], best_stats["pipelined"], include_times=False
    )
    return {
        "unpipelined_seconds": best["unpipelined"],
        "pipelined_seconds": best["pipelined"],
        "pipeline_speedup": best["unpipelined"] / best["pipelined"],
        "max_workers": len(workers) if workers is not None else FIG7C_MAX_WORKERS,
    }


def run_artifact_plane_report(smoke: bool = False) -> Dict[str, float]:
    """Coordinator bytes-on-wire saved by the content-addressed artifact plane.

    Serves the same census spec twice over one two-worker fleet — identical
    seeds produce identical artifact signatures, so the second run can
    resolve its store-resident inputs from the fleet's cache tier or a peer
    worker (docs/artifacts.md) — then repeats the pair with the plane off:
    ``peer_fetch`` disabled and the worker cache tier squeezed to its
    1-byte floor, so every artifact byte routes through the coordinator on
    every run.  The difference in the coordinator's ``fetch_bytes_served``
    is the wire traffic the plane absorbed.  **Report-only**: reuse counts depend on
    which workers the runs' tasks land on, so no bar is enforced (both
    configurations' payloads are still checked equivalent elsewhere — the
    serve smoke and tests/test_service.py).
    """
    from repro.service.client import ServiceClient
    from repro.service.daemon import ServeDaemon

    spec = {
        "workload": "census",
        "iterations": 2,
        "scale": 0.1 if smoke else 0.25,
        "seed": SEED,
    }
    planes: Dict[str, Dict[str, float]] = {}
    for label, peer_fetch in (("plane_on", True), ("plane_off", False)):
        with ServeDaemon(
            max_workers=2,
            max_concurrent_runs=2,
            peer_fetch=peer_fetch,
            worker_cache_bytes=None if peer_fetch else 1,
        ) as daemon:
            client = ServiceClient(daemon.address)
            client.submit(dict(spec)).result()
            client.submit(dict(spec)).result()  # same seed: same signatures
        planes[label] = daemon.stats()["artifact_plane"]
    on, off = planes["plane_on"], planes["plane_off"]
    return {
        "coordinator_bytes_plane_on": float(on.get("fetch_bytes_served", 0)),
        "coordinator_bytes_plane_off": float(off.get("fetch_bytes_served", 0)),
        "coordinator_bytes_saved": float(
            off.get("fetch_bytes_served", 0) - on.get("fetch_bytes_served", 0)
        ),
        "coordinator_fetches_plane_on": float(on.get("fetches_served", 0)),
        "coordinator_fetches_plane_off": float(off.get("fetches_served", 0)),
        "peer_fetches": float(on.get("peer_fetches", 0)),
        "cross_session_hits": float(on.get("cross_session_hits", 0)),
        "cache_hits": float(on.get("cache_hits", 0)),
    }


def _cpu_process_bar(smoke: bool = False) -> Optional[float]:
    """Process-executor speedup bar on the CPU-bound DAG, or None to skip.

    There is no parallel CPU to win on a single-core machine, so the bar is
    only enforced where the hardware can express it.
    """
    cores = os.cpu_count() or 1
    if cores < 2:
        return None
    if smoke:
        return 1.2
    return 2.0 if cores >= 4 else 1.5


def _cpu_distributed_bar(smoke: bool = False) -> Optional[float]:
    """Distributed-executor speedup bar on the CPU-bound DAG, or None to skip.

    Enforced only on >= 4 cores (matching the process-executor gating, with
    slack for the per-task framing + socket round trip): 4 local workers
    must achieve >= 1.5x over inline.  Below 4 cores the bar is report-only.
    """
    cores = os.cpu_count() or 1
    if cores < 4:
        return None
    return 1.2 if smoke else 1.5


def test_fig7c_latency_bound_executors(benchmark):
    result = run_once(benchmark, _latency_comparison)
    emit(
        "Figure 7c — executors on a wide latency-bound DAG",
        _format_executor_comparison("latency-bound (sleeping operators)", result),
    )

    # DAG-level parallelism over latency-bound branches must pay off by >= 2x
    # (the acceptance bar; observed ~3x with 4 workers over 8 branches).
    assert result["thread_speedup"] >= 2.0


def test_fig7c_cpu_bound_executors(benchmark):
    result = run_once(benchmark, _cpu_comparison)
    emit(
        "Figure 7c — executors on a wide CPU-bound DAG",
        _format_executor_comparison("CPU-bound (pure-Python spin loops)", result),
    )

    # The GIL caps the thread executor on pure-Python work...
    assert result["thread_speedup"] < 1.3
    # ...while the process executor scales with the available cores...
    bar = _cpu_process_bar()
    if bar is None:
        pytest.skip("single-core machine: no parallel CPU to demonstrate scaling on")
    assert result["process_speedup"] >= bar
    # ...and the distributed executor's TCP workers do too (>= 4 cores).
    distributed_bar = _cpu_distributed_bar()
    if distributed_bar is not None:
        assert result["distributed_speedup"] >= distributed_bar


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Inline/thread/process/distributed executor comparison (Figure 7c)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small DAGs + relaxed speedup bars; used by CI as a fast sanity check",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process", "distributed", "all"),
        default="all",
        help="which comparison to run: 'thread' = latency-bound section "
        "(inline vs thread), 'process' = CPU-bound section (inline vs thread "
        "vs process), 'distributed' = CPU-bound section (inline vs "
        "distributed only) plus the pipelining report, 'all' = both "
        "sections with all four executors plus the pipelining report",
    )
    parser.add_argument(
        "--workers",
        default=None,
        help="comma-separated host:port addresses of pre-started remote "
        "workers (python -m repro.execution.worker) for the distributed "
        "section; replaces the locally-spawned worker pool",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write every section's measurements to PATH as JSON "
        "(uploaded as a CI artifact by the distributed-remote smoke job)",
    )
    args = parser.parse_args(argv)
    worker_addresses = (
        [spec.strip() for spec in args.workers.split(",") if spec.strip()]
        if args.workers
        else None
    )
    if worker_addresses and args.executor not in ("distributed", "all"):
        # Mirror run_lifecycle's guard: addresses must never be silently
        # dropped while the user believes remote workers were measured.
        parser.error("--workers requires --executor distributed (or all)")
    failures = []
    sections: Dict[str, Dict[str, float]] = {}

    if args.executor in ("thread", "all"):
        # The thread-only section skips the process executor entirely, so its
        # pass/fail never depends on process-pool infrastructure.
        executors = EXECUTORS if args.executor == "all" else ("inline", "thread")
        result = _latency_comparison(smoke=args.smoke, executors=executors)
        sections["latency"] = result
        print(_format_executor_comparison("latency-bound (sleeping operators)", result))
        bar = 1.5 if args.smoke else 2.0
        if result["thread_speedup"] < bar:
            failures.append(
                f"thread speedup {result['thread_speedup']:.2f}x below the {bar:g}x "
                f"bar on the latency-bound DAG"
            )
        else:
            print(f"OK: thread {result['thread_speedup']:.2f}x >= {bar:g}x (equivalent run statistics)")

    if args.executor in ("process", "all"):
        # The process-only section skips the distributed executor so its
        # pass/fail never depends on the TCP transport (and vice versa).
        executors = EXECUTORS if args.executor == "all" else ("inline", "thread", "process")
        result = _cpu_comparison(smoke=args.smoke, executors=executors)
        sections["cpu"] = result
        print(_format_executor_comparison("CPU-bound (pure-Python spin loops)", result))
        if result["thread_speedup"] >= 1.3:
            failures.append(
                f"thread speedup {result['thread_speedup']:.2f}x on CPU-bound work — "
                f"expected < 1.3x (GIL-bound)"
            )
        bar = _cpu_process_bar(smoke=args.smoke)
        if bar is None:
            print("SKIP: single-core machine, process speedup bar not enforced")
        elif result["process_speedup"] < bar:
            failures.append(
                f"process speedup {result['process_speedup']:.2f}x below the {bar:g}x "
                f"bar on the CPU-bound DAG"
            )
        else:
            print(f"OK: process {result['process_speedup']:.2f}x >= {bar:g}x (equivalent run statistics)")

    if args.executor in ("distributed", "all"):
        pool_label = (
            f"{len(worker_addresses)} remote workers ({args.workers})"
            if worker_addresses
            else "4 local TCP workers"
        )
        if args.executor == "distributed" or worker_addresses:
            # Remote addresses always get their own two-way section — the
            # four-way comparison above timed the locally-spawned pool.
            overrides = None
            if worker_addresses:
                overrides = {"distributed": DistributedExecutor(workers=worker_addresses)}
            try:
                result = _cpu_comparison(
                    smoke=args.smoke,
                    executors=("inline", "distributed"),
                    overrides=overrides,
                    max_workers=(
                        len(worker_addresses) if worker_addresses else FIG7C_MAX_WORKERS
                    ),
                )
            finally:
                if overrides is not None:
                    overrides["distributed"].shutdown()
            print(_format_executor_comparison(
                f"CPU-bound (pure-Python spin loops), {pool_label}", result
            ))
            sections["distributed"] = result
        # 'all' without --workers reuses the four-way CPU comparison above
        # (already recorded as sections["cpu"]; not duplicated here).
        bar = _cpu_distributed_bar(smoke=args.smoke)
        if worker_addresses:
            # Remote workers share the same cores in CI (loopback) but pay
            # connect + framing per task; the local-spawn bar does not
            # transfer, so the remote section is report-only.
            print(
                f"INFO: distributed {result['distributed_speedup']:.2f}x vs inline "
                f"on {pool_label} (report-only; equivalent run statistics)"
            )
        elif bar is None:
            print("SKIP: < 4 cores, distributed speedup bar reported but not enforced")
            print(f"INFO: distributed {result['distributed_speedup']:.2f}x vs inline")
        elif result["distributed_speedup"] < bar:
            failures.append(
                f"distributed speedup {result['distributed_speedup']:.2f}x below the "
                f"{bar:g}x bar on the CPU-bound DAG ({pool_label})"
            )
        else:
            print(
                f"OK: distributed {result['distributed_speedup']:.2f}x >= {bar:g}x "
                f"(equivalent run statistics)"
            )

        # Pipelined vs unpipelined dispatch on short latency-bound tasks:
        # report-only (the win rides on the framing round trip, which
        # loopback CI cannot bound reliably), equivalence still asserted.
        pipeline = run_pipeline_comparison(smoke=args.smoke, workers=worker_addresses)
        sections["pipeline"] = pipeline
        print(
            f"pipelining (depth 2 vs 1, short tasks, {pool_label}): "
            f"{pipeline['unpipelined_seconds']:.3f}s -> "
            f"{pipeline['pipelined_seconds']:.3f}s "
            f"({pipeline['pipeline_speedup']:.2f}x)"
        )
        if pipeline["pipeline_speedup"] >= 1.0:
            print(
                f"OK: pipelined dispatch >= unpipelined "
                f"({pipeline['pipeline_speedup']:.2f}x, report-only bar)"
            )
        else:
            print(
                f"INFO: pipelined dispatch {pipeline['pipeline_speedup']:.2f}x < 1.0x "
                f"on this run (report-only bar; not enforced)"
            )

        # Artifact plane: coordinator bytes-on-wire with worker-to-worker
        # transfer + the shared cache tier on vs off (report-only — reuse
        # counts depend on task placement; see docs/artifacts.md).  Only
        # meaningful for the local-spawn fleet the service layer drives.
        if not worker_addresses:
            plane = run_artifact_plane_report(smoke=args.smoke)
            sections["artifact_plane"] = plane
            print(
                "artifact plane (two same-seed census runs, 2 workers): "
                f"coordinator streamed "
                f"{plane['coordinator_bytes_plane_off']:.0f} bytes "
                f"({plane['coordinator_fetches_plane_off']:.0f} fetches) "
                f"with the plane off vs "
                f"{plane['coordinator_bytes_plane_on']:.0f} bytes "
                f"({plane['coordinator_fetches_plane_on']:.0f} fetches) with it on"
            )
            print(
                f"INFO: {plane['coordinator_bytes_saved']:.0f} coordinator "
                f"bytes-on-wire saved via {plane['peer_fetches']:.0f} peer "
                f"fetch(es) + {plane['cross_session_hits']:.0f} cross-session "
                f"cache hit(s) (report-only; not enforced)"
            )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(
                {
                    "smoke": bool(args.smoke),
                    "executor": args.executor,
                    "workers": worker_addresses,
                    "cores": os.cpu_count(),
                    "sections": sections,
                    "failures": failures,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"wrote measurements to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
