"""Setup shim for legacy editable installs; metadata lives in pyproject.toml."""

from setuptools import setup

setup()
