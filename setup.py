"""Setup shim for environments without the `wheel` package (legacy editable installs)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Python reproduction of Helix: Holistic Optimization for Accelerating "
        "Iterative Machine Learning (VLDB 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
